package algebra

import (
	"repro/internal/storage"
	"repro/internal/vec"
)

// Fetch performs tuple reconstruction (MonetDB's algebra.leftfetchjoin, §2.3
// Figure 10): for every row id in oids it fetches the value at that head oid
// of the target column view. Row ids that fall outside the view are aligned
// away per the paper's dynamic-partition boundary correction; the number of
// such drops is reported so callers (and tests) can assert when strict
// containment is expected.
//
// The result column's head is a fresh dense oid sequence starting at zero,
// matching the materialized intermediates of an operator-at-a-time engine.
func Fetch(oids []int64, target *storage.Column) (*storage.Column, Work, int) {
	aligned, dropped := storage.AlignOids(oids, target.Seq(), target.EndSeq())
	out := make([]int64, len(aligned))
	for i, oid := range aligned {
		out[i] = target.ValueAtOid(oid)
	}
	var data *vec.Vector
	if d := target.Dict(); d != nil {
		data = vec.NewDictCoded(out, d)
	} else {
		data = vec.NewInt64(out)
	}
	w := Work{
		BytesSeqRead:   int64(len(oids)) * 8,
		BytesWritten:   int64(len(out)) * 8,
		TuplesIn:       int64(len(oids)),
		TuplesOut:      int64(len(out)),
		FootprintBytes: target.Bytes(),
		MemClaimBytes:  int64(len(out)) * 8,
	}
	// Ascending row ids (the common case: selection vectors) fetch in a
	// forward skip-scan, effectively sequential; shuffled ids (join sides)
	// pay random-access cost.
	if isAscending(aligned) {
		w.BytesSeqRead += int64(len(aligned)) * 8
	} else {
		w.BytesRandRead += int64(len(aligned)) * 8
	}
	return storage.NewColumn(target.Name(), 0, data), w, dropped
}

// FetchPositions gathers values of col at the given zero-based positions of
// the view (not absolute oids); used when an upstream operator emits
// positions into its own output space, e.g. join result sides.
func FetchPositions(pos []int64, col *storage.Column) (*storage.Column, Work) {
	out := make([]int64, len(pos))
	vals := col.Values()
	for i, p := range pos {
		out[i] = vals[p]
	}
	var data *vec.Vector
	if d := col.Dict(); d != nil {
		data = vec.NewDictCoded(out, d)
	} else {
		data = vec.NewInt64(out)
	}
	w := Work{
		BytesSeqRead:   int64(len(pos)) * 8,
		BytesRandRead:  int64(len(pos)) * 8,
		BytesWritten:   int64(len(out)) * 8,
		TuplesIn:       int64(len(pos)),
		TuplesOut:      int64(len(out)),
		FootprintBytes: col.Bytes(),
		MemClaimBytes:  int64(len(out)) * 8,
	}
	return storage.NewColumn(col.Name(), 0, data), w
}
