package algebra

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/vec"
)

// fetchWork is the shared cost accounting for tuple reconstruction. The oid
// list is scanned once sequentially. For ascending row ids (the common
// case: selection vectors) the driven target accesses are one fused forward
// skip-scan riding the same stream — the prefetcher serves both, so the
// model charges that stream once rather than once per array; the seed
// charged it twice (base Work plus the ascending branch), making ascending
// fetches cost as much sequential I/O as two full scans. Shuffled ids (join
// sides) genuinely touch a second region per value and pay random access.
// Pinned by TestFetchWorkAccounting.
func fetchWork(oids, aligned []int64, footprint int64) Work {
	w := Work{
		BytesSeqRead:   int64(len(oids)) * 8,
		BytesWritten:   int64(len(aligned)) * 8,
		TuplesIn:       int64(len(oids)),
		TuplesOut:      int64(len(aligned)),
		FootprintBytes: footprint,
		MemClaimBytes:  int64(len(aligned)) * 8,
	}
	if !isAscending(aligned) {
		w.BytesRandRead += int64(len(aligned)) * 8
	}
	return w
}

// Fetch performs tuple reconstruction (MonetDB's algebra.leftfetchjoin, §2.3
// Figure 10): for every row id in oids it fetches the value at that head oid
// of the target column view. Row ids that fall outside the view are aligned
// away per the paper's dynamic-partition boundary correction; the number of
// such drops is reported so callers (and tests) can assert when strict
// containment is expected.
//
// The result column's head is a fresh dense oid sequence starting at zero,
// matching the materialized intermediates of an operator-at-a-time engine.
func Fetch(oids []int64, target *storage.Column) (*storage.Column, Work, int) {
	aligned, dropped := storage.AlignOids(oids, target.Seq(), target.EndSeq())
	out := make([]int64, len(aligned))
	n, w := fetchAligned(out, oids, aligned, target)
	var data *vec.Vector
	if d := target.Dict(); d != nil {
		data = vec.NewDictCoded(out[:n], d)
	} else {
		data = vec.NewInt64(out[:n])
	}
	return storage.NewColumn(target.Name(), 0, data), w, dropped
}

// FetchInto is Fetch writing into a caller-owned destination — the range
// variant the zero-copy exchange uses: each partition clone fetches into its
// disjoint slice of one shared result buffer. It returns the number of
// values written (≤ len(oids); boundary-misaligned row ids are dropped like
// Fetch does) plus the identical Work record, so shared-buffer and
// materializing executions cost the same. dst must hold at least the aligned
// oid count; len(oids) always suffices.
func FetchInto(dst []int64, oids []int64, target *storage.Column) (int, Work, int) {
	aligned, dropped := storage.AlignOids(oids, target.Seq(), target.EndSeq())
	if len(dst) < len(aligned) {
		panic(fmt.Sprintf("algebra: FetchInto dst %d too small for %d aligned oids", len(dst), len(aligned)))
	}
	n, w := fetchAligned(dst, oids, aligned, target)
	return n, w, dropped
}

func fetchAligned(dst []int64, oids, aligned []int64, target *storage.Column) (int, Work) {
	for i, oid := range aligned {
		dst[i] = target.ValueAtOid(oid)
	}
	return len(aligned), fetchWork(oids, aligned, target.Bytes())
}

// FetchPositions gathers values of col at the given zero-based positions of
// the view (not absolute oids); used when an upstream operator emits
// positions into its own output space, e.g. join result sides.
func FetchPositions(pos []int64, col *storage.Column) (*storage.Column, Work) {
	out := make([]int64, len(pos))
	w := FetchPositionsInto(out, pos, col)
	var data *vec.Vector
	if d := col.Dict(); d != nil {
		data = vec.NewDictCoded(out, d)
	} else {
		data = vec.NewInt64(out)
	}
	return storage.NewColumn(col.Name(), 0, data), w
}

// FetchPositionsInto is FetchPositions writing into a caller-owned
// destination of length len(pos) (the zero-copy exchange range variant).
func FetchPositionsInto(dst []int64, pos []int64, col *storage.Column) Work {
	vals := col.Values()
	for i, p := range pos {
		dst[i] = vals[p]
	}
	return Work{
		BytesSeqRead:   int64(len(pos)) * 8,
		BytesRandRead:  int64(len(pos)) * 8,
		BytesWritten:   int64(len(pos)) * 8,
		TuplesIn:       int64(len(pos)),
		TuplesOut:      int64(len(pos)),
		FootprintBytes: col.Bytes(),
		MemClaimBytes:  int64(len(pos)) * 8,
	}
}
