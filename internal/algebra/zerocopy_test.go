package algebra

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/vec"
)

// The oid scan of a fetch must be charged exactly once: ascending row ids
// drive one fused forward skip-scan (sequential, already covered by the oid
// scan), shuffled ids pay random access per fetched value. The seed
// double-counted the ascending case.
func TestFetchWorkAccounting(t *testing.T) {
	target := storage.NewIntColumn("rt", []int64{10, 11, 12, 13, 14, 15, 16, 17})

	_, asc, _ := Fetch([]int64{1, 3, 4, 7}, target)
	if asc.BytesSeqRead != 4*8 {
		t.Fatalf("ascending fetch BytesSeqRead = %d, want %d (oid scan counted once)", asc.BytesSeqRead, 4*8)
	}
	if asc.BytesRandRead != 0 {
		t.Fatalf("ascending fetch BytesRandRead = %d, want 0", asc.BytesRandRead)
	}

	_, shuf, _ := Fetch([]int64{7, 1, 4, 3}, target)
	if shuf.BytesSeqRead != 4*8 {
		t.Fatalf("shuffled fetch BytesSeqRead = %d, want %d", shuf.BytesSeqRead, 4*8)
	}
	if shuf.BytesRandRead != 4*8 {
		t.Fatalf("shuffled fetch BytesRandRead = %d, want %d", shuf.BytesRandRead, 4*8)
	}
}

// FetchInto must write the same values and report the same Work as Fetch, so
// shared-buffer and materializing executions have identical virtual
// timelines.
func TestFetchIntoMatchesFetch(t *testing.T) {
	target := storage.NewIntColumn("rt", []int64{0, 0, 12, 0, 11, 20, 0, 13}).View(1, 8)
	oids := []int64{2, 4, 5, 7, 8} // 8 is outside the view and must drop
	col, w, dropped := Fetch(oids, target)

	dst := make([]int64, len(oids))
	n, wi, di := FetchInto(dst, oids, target)
	if n != col.Len() || di != dropped || wi != w {
		t.Fatalf("FetchInto (n=%d w=%+v dropped=%d) != Fetch (n=%d w=%+v dropped=%d)",
			n, wi, di, col.Len(), w, dropped)
	}
	for i := 0; i < n; i++ {
		if dst[i] != col.At(i) {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], col.At(i))
		}
	}
}

func TestCalcIntoMatchesCalc(t *testing.T) {
	a := storage.NewIntColumn("a", []int64{1, 2, 3, 4}).View(1, 4)
	b := storage.NewIntColumn("b", []int64{10, 20, 30, 40}).View(1, 4)

	col, w := CalcVV(CalcMul, a, b)
	dst := make([]int64, a.Len())
	wi := CalcVVInto(dst, CalcMul, a, b)
	if wi != w {
		t.Fatalf("CalcVVInto work %+v != CalcVV work %+v", wi, w)
	}
	for i := range dst {
		if dst[i] != col.At(i) {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], col.At(i))
		}
	}

	col, w = CalcSV(CalcSub, 100, a, true)
	wi = CalcSVInto(dst, CalcSub, 100, a, true)
	if wi != w {
		t.Fatalf("CalcSVInto work %+v != CalcSV work %+v", wi, w)
	}
	for i := range dst {
		if dst[i] != col.At(i) {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], col.At(i))
		}
	}
}

// A pack served as a view over the shared clone buffer must be bit-identical
// to the copying pack of the clones' views, with a Work record showing zero
// data movement.
func TestPackColumnsViewMatchesCopy(t *testing.T) {
	src := storage.NewIntColumn("x", []int64{5, 6, 7, 8, 9})
	oids := []int64{0, 1, 2, 3, 4}

	bld := vec.NewBuilder(len(oids))
	parts := make([]*storage.Column, 2)
	cuts := [][2]int{{0, 2}, {2, 5}}
	var tuplesIn int64
	for i, c := range cuts {
		lo, hi := c[0], c[1]
		n, _, _ := FetchInto(bld.WriteRange(lo, hi), oids[lo:hi], src)
		if n != hi-lo {
			t.Fatalf("clone %d wrote %d, want %d", i, n, hi-lo)
		}
		parts[i] = storage.NewBuilderColumn("x", int64(lo), bld, lo, hi)
		tuplesIn += int64(n)
	}

	want, copyWork := PackColumns(parts)
	got, viewWork := PackColumnsView(parts[0].Name(), bld.Publish(), tuplesIn)
	if !vec.Equal(got.Data(), want.Data()) {
		t.Fatalf("view pack %v != copy pack %v", got.Values(), want.Values())
	}
	if got.Seq() != 0 || got.Name() != want.Name() {
		t.Fatalf("view pack head/name: seq=%d name=%q", got.Seq(), got.Name())
	}
	if viewWork.BytesSeqRead != 0 || viewWork.BytesWritten != 0 || viewWork.MemClaimBytes != 0 {
		t.Fatalf("view pack moved data: %+v", viewWork)
	}
	if viewWork.TuplesIn != copyWork.TuplesIn || viewWork.TuplesOut != copyWork.TuplesOut {
		t.Fatalf("view pack tuples %+v != copy pack tuples %+v", viewWork, copyWork)
	}
	// The view must alias the shared buffer the clones wrote, not copy it.
	if &got.Values()[0] != &parts[0].Values()[0] {
		t.Fatal("view pack copied the shared buffer")
	}
}

// Exercises buffer reuse: SelectInto and PackOidsInto over recycled buffers
// must produce the same outputs and Work as their allocating forms.
func TestIntoVariantsReuseBuffers(t *testing.T) {
	col := storage.NewIntColumn("v", []int64{3, 1, 4, 1, 5, 9, 2, 6})
	want, wWant := Select(col, AtLeast(4))

	buf := make([]int64, 0, 1) // too small: must grow, not truncate
	got, wGot := SelectInto(buf, col, AtLeast(4))
	if len(got) != len(want) || wGot.TuplesOut != wWant.TuplesOut {
		t.Fatalf("SelectInto = %v (%+v), want %v (%+v)", got, wGot, want, wWant)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectInto[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	parts := [][]int64{{1, 2}, {3}, {4, 5, 6}}
	wantP, _ := PackOids(parts)
	gotP, _ := PackOidsInto(make([]int64, 0, 16), parts)
	if len(gotP) != len(wantP) {
		t.Fatalf("PackOidsInto = %v, want %v", gotP, wantP)
	}
	for i := range wantP {
		if gotP[i] != wantP[i] {
			t.Fatalf("PackOidsInto[%d] = %d, want %d", i, gotP[i], wantP[i])
		}
	}
}

// PackScalarsOwned must alias the caller's slice (ownership transfer);
// PackScalars must keep copying.
func TestPackScalarsOwnership(t *testing.T) {
	src := []int64{4, 5}
	owned, _ := PackScalarsOwned("partials", src)
	src[0] = 99
	if owned.At(0) != 99 {
		t.Fatal("PackScalarsOwned must take ownership, not copy")
	}

	src2 := []int64{4, 5}
	copied, _ := PackScalars("partials", src2)
	src2[0] = 99
	if copied.At(0) != 4 {
		t.Fatal("PackScalars must copy; caller may reuse partials")
	}
}
