package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/vec"
)

func col(vals ...int64) *storage.Column { return storage.NewIntColumn("c", vals) }

func TestRangeMatches(t *testing.T) {
	cases := []struct {
		name string
		r    Range
		v    int64
		want bool
	}{
		{"between lo edge", Between(2, 5), 2, true},
		{"between hi edge", Between(2, 5), 5, true},
		{"between outside", Between(2, 5), 6, false},
		{"halfopen hi excluded", HalfOpen(2, 5), 5, false},
		{"eq hit", Eq(3), 3, true},
		{"eq miss", Eq(3), 4, false},
		{"lessthan excl", LessThan(3), 3, false},
		{"atmost incl", AtMost(3), 3, true},
		{"greaterthan excl", GreaterThan(3), 3, false},
		{"atleast incl", AtLeast(3), 3, true},
		{"full low", FullRange(), -1 << 40, true},
		{"full high", FullRange(), 1 << 40, true},
	}
	for _, tc := range cases {
		if got := tc.r.Matches(tc.v); got != tc.want {
			t.Errorf("%s: Matches(%d) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}
}

func TestSelectReturnsAbsoluteOids(t *testing.T) {
	c := col(10, 20, 30, 40, 50)
	v := c.View(1, 5)
	oids, w := Select(v, AtLeast(30))
	if len(oids) != 3 || oids[0] != 2 || oids[1] != 3 || oids[2] != 4 {
		t.Fatalf("oids = %v", oids)
	}
	if w.TuplesIn != 4 || w.TuplesOut != 3 || w.BytesSeqRead != 32 {
		t.Fatalf("work = %+v", w)
	}
}

func TestSelectEmptyResult(t *testing.T) {
	oids, w := Select(col(1, 2, 3), GreaterThan(100))
	if len(oids) != 0 || w.TuplesOut != 0 {
		t.Fatalf("oids=%v work=%+v", oids, w)
	}
}

// Property: concatenating partitioned selects in partition order equals the
// serial select — the basic-mutation correctness invariant (Figure 3).
func TestSelectPartitionEquivalence(t *testing.T) {
	f := func(vals []int64, cutRaw uint8, lo, hi int64) bool {
		if len(vals) == 0 {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		c := storage.NewIntColumn("x", vals)
		pred := Between(lo%100, hi%100)
		serial, _ := Select(c, pred)
		cut := int(cutRaw) % (len(vals) + 1)
		p1, _ := Select(c.View(0, cut), pred)
		p2, _ := Select(c.View(cut, len(vals)), pred)
		packed, _ := PackOids([][]int64{p1, p2})
		if len(packed) != len(serial) {
			return false
		}
		for i := range packed {
			if packed[i] != serial[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSelectWithCandsRefines(t *testing.T) {
	c := col(5, 15, 25, 35, 45)
	first, _ := Select(c, AtLeast(15)) // oids 1..4
	refined, w, dropped := SelectWithCands(c, AtMost(35), first)
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	if len(refined) != 3 || refined[0] != 1 || refined[2] != 3 {
		t.Fatalf("refined = %v", refined)
	}
	if w.TuplesIn != 4 || w.TuplesOut != 3 {
		t.Fatalf("work = %+v", w)
	}
}

func TestSelectWithCandsAlignsOutsideView(t *testing.T) {
	c := col(5, 15, 25, 35, 45)
	view := c.View(1, 3) // oids 1,2
	cands := []int64{0, 1, 2, 3}
	refined, _, dropped := SelectWithCands(view, FullRange(), cands)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(refined) != 2 || refined[0] != 1 || refined[1] != 2 {
		t.Fatalf("refined = %v", refined)
	}
}

// Property: refining with candidates equals selecting the conjunction.
func TestSelectWithCandsConjunction(t *testing.T) {
	f := func(vals []int64, a, b int64) bool {
		c := storage.NewIntColumn("x", vals)
		p1 := AtLeast(a % 50)
		p2 := AtMost(b%50 + 25)
		cands, _ := Select(c, p1)
		got, _, _ := SelectWithCands(c, p2, cands)
		var want []int64
		for i, v := range vals {
			if p1.Matches(v) && p2.Matches(v) {
				want = append(want, int64(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func strCol(t *testing.T, vals ...string) *storage.Column {
	t.Helper()
	d := vec.NewDict()
	codes := make([]int64, len(vals))
	for i, s := range vals {
		codes[i] = d.Code(s)
	}
	return storage.NewColumn("s", 0, vec.NewDictCoded(codes, d))
}

func TestSelectLike(t *testing.T) {
	c := strCol(t, "PROMO STEEL", "STANDARD TIN", "PROMO COPPER", "ECONOMY STEEL")
	oids, w := SelectLike(c, "PROMO", LikePrefix, false)
	if len(oids) != 2 || oids[0] != 0 || oids[1] != 2 {
		t.Fatalf("prefix oids = %v", oids)
	}
	if w.TuplesOut != 2 {
		t.Fatalf("work = %+v", w)
	}
	anti, _ := SelectLike(c, "PROMO", LikePrefix, true)
	if len(anti) != 2 || anti[0] != 1 || anti[1] != 3 {
		t.Fatalf("anti oids = %v", anti)
	}
	sub, _ := SelectLike(c, "STEEL", LikeContains, false)
	if len(sub) != 2 || sub[0] != 0 || sub[1] != 3 {
		t.Fatalf("contains oids = %v", sub)
	}
}

func TestSelectLikeOnViewUsesAbsoluteOids(t *testing.T) {
	c := strCol(t, "a PROMO", "b", "c PROMO", "d PROMO")
	v := c.View(2, 4)
	oids, _ := SelectLike(v, "PROMO", LikeContains, false)
	if len(oids) != 2 || oids[0] != 2 || oids[1] != 3 {
		t.Fatalf("oids = %v", oids)
	}
}

func TestSelectLikePanicsOnIntColumn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SelectLike over int column did not panic")
		}
	}()
	SelectLike(col(1, 2), "x", LikeContains, false)
}
