package algebra

import (
	"sort"

	"repro/internal/storage"
	"repro/internal/vec"
)

// Sort orders the view's values and returns the sorted column together with
// the permutation as absolute head oids (algebra.sort's (value, oid) pair).
// The sort is stable so that equal keys keep scan order, which keeps
// partitioned sort + merge result-identical to a serial sort.
func Sort(col *storage.Column, desc bool) (*storage.Column, []int64, Work) {
	n := col.Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	vals := col.Values()
	sort.SliceStable(perm, func(a, b int) bool {
		if desc {
			return vals[perm[a]] > vals[perm[b]]
		}
		return vals[perm[a]] < vals[perm[b]]
	})
	sorted := make([]int64, n)
	oids := make([]int64, n)
	for i, p := range perm {
		sorted[i] = vals[p]
		oids[i] = col.Seq() + int64(p)
	}
	var data *vec.Vector
	if d := col.Dict(); d != nil {
		data = vec.NewDictCoded(sorted, d)
	} else {
		data = vec.NewInt64(sorted)
	}
	logN := int64(1)
	for x := n; x > 1; x >>= 1 {
		logN++
	}
	w := Work{
		BytesSeqRead:  col.Bytes(),
		BytesWritten:  int64(n) * 16,
		TuplesIn:      int64(n),
		TuplesOut:     int64(n),
		CompareOps:    int64(n) * logN,
		MemClaimBytes: int64(n) * 24,
	}
	return storage.NewColumn(col.Name(), 0, data), oids, w
}

// MergeSortedRuns merges pre-sorted runs (packed in partition order with run
// boundaries) into one sorted column — the combining stage when a sort
// operator is parallelized by the advanced mutation. Stability across runs
// follows run order for equal keys.
func MergeSortedRuns(runs []*storage.Column, desc bool) (*storage.Column, Work) {
	type cursor struct {
		run *storage.Column
		pos int
	}
	var cursors []cursor
	total := 0
	for _, r := range runs {
		if r.Len() > 0 {
			cursors = append(cursors, cursor{run: r})
		}
		total += r.Len()
	}
	out := make([]int64, 0, total)
	var compares int64
	for len(cursors) > 0 {
		best := 0
		for i := 1; i < len(cursors); i++ {
			compares++
			a := cursors[i].run.Data().At(cursors[i].pos)
			b := cursors[best].run.Data().At(cursors[best].pos)
			if (!desc && a < b) || (desc && a > b) {
				best = i
			}
		}
		c := &cursors[best]
		out = append(out, c.run.Data().At(c.pos))
		c.pos++
		if c.pos == c.run.Len() {
			cursors = append(cursors[:best], cursors[best+1:]...)
		}
	}
	var dict *vec.Dict
	if len(runs) > 0 {
		dict = runs[0].Dict()
	}
	var data *vec.Vector
	if dict != nil {
		data = vec.NewDictCoded(out, dict)
	} else {
		data = vec.NewInt64(out)
	}
	name := "merge"
	if len(runs) > 0 {
		name = runs[0].Name()
	}
	w := Work{
		BytesSeqRead:  int64(total) * 8,
		BytesWritten:  int64(total) * 8,
		TuplesIn:      int64(total),
		TuplesOut:     int64(total),
		CompareOps:    compares,
		MemClaimBytes: int64(total) * 8,
	}
	return storage.NewColumn(name, 0, data), w
}
