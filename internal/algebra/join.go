package algebra

import (
	"repro/internal/storage"
)

// HashJoin computes the equi-join between the outer column view (the larger,
// partitioned input — §2.1 Figure 4) and the inner column (on which the hash
// table is built). It returns two parallel oid vectors: louter holds
// absolute head oids of matching outer tuples in scan order, rinner the
// corresponding absolute head oids of inner matches.
//
// The hash build is served from the column's cached index when one already
// covers the inner range, so cloned join operators probing the same inner
// pay the build once — the behaviour that makes outer-only partitioning
// profitable in the paper. Work reports whether this execution built the
// table (HashBuilds > 0) or reused it.
func HashJoin(outer, inner *storage.Column) (louter, rinner []int64, w Work) {
	idx, built := inner.Hash()
	ovals := outer.Values()
	oseq := outer.Seq()
	louter = make([]int64, 0, len(ovals))
	rinner = make([]int64, 0, len(ovals))
	for i, v := range ovals {
		for _, roid := range idx.Lookup(v) {
			louter = append(louter, oseq+int64(i))
			rinner = append(rinner, roid)
		}
	}
	w = Work{
		BytesSeqRead:   outer.Bytes(),
		BytesRandRead:  int64(len(louter)) * 8,
		BytesWritten:   int64(len(louter)+len(rinner)) * 8,
		TuplesIn:       int64(len(ovals)) + int64(inner.Len()),
		TuplesOut:      int64(len(louter)),
		HashProbes:     int64(len(ovals)),
		FootprintBytes: hashFootprint(inner),
		MemClaimBytes:  int64(cap(louter)+cap(rinner)) * 8,
	}
	if built {
		w.HashBuilds = int64(inner.Len())
		w.BytesSeqRead += inner.Bytes()
		w.MemClaimBytes += hashFootprint(inner)
	}
	return louter, rinner, w
}

// hashFootprint estimates the in-memory size of a hash index over col:
// roughly 3 words per tuple (bucket slot, oid, chaining overhead). The cost
// model compares it against the simulated shared L3 to decide probe cost —
// the mechanism behind the paper's 16 MB-inner vs 64 MB-inner speed-up gap.
func hashFootprint(col *storage.Column) int64 {
	return int64(col.Len()) * 24
}

// NestedLoopJoin is the obviously-correct O(n·m) reference join used only by
// tests as the oracle for HashJoin.
func NestedLoopJoin(outer, inner *storage.Column) (louter, rinner []int64) {
	for i := 0; i < outer.Len(); i++ {
		ov := outer.Data().At(i)
		for j := 0; j < inner.Len(); j++ {
			if inner.Data().At(j) == ov {
				louter = append(louter, outer.Seq()+int64(i))
				rinner = append(rinner, inner.Seq()+int64(j))
			}
		}
	}
	return louter, rinner
}
