package algebra

import (
	"repro/internal/storage"
)

// Range is a one-sided or two-sided range predicate over int64 payloads.
// Unbounded sides use the sentinel values NoLow / NoHigh.
type Range struct {
	Lo, Hi         int64
	LoIncl, HiIncl bool
}

// Sentinels for unbounded range sides.
const (
	NoLow  = int64(-1) << 62
	NoHigh = int64(1) << 62
)

// FullRange matches every value.
func FullRange() Range { return Range{Lo: NoLow, Hi: NoHigh} }

// Eq returns the point predicate value == v.
func Eq(v int64) Range { return Range{Lo: v, Hi: v, LoIncl: true, HiIncl: true} }

// Between returns the inclusive range [lo, hi].
func Between(lo, hi int64) Range { return Range{Lo: lo, Hi: hi, LoIncl: true, HiIncl: true} }

// HalfOpen returns the range [lo, hi).
func HalfOpen(lo, hi int64) Range { return Range{Lo: lo, Hi: hi, LoIncl: true} }

// LessThan returns value < hi.
func LessThan(hi int64) Range { return Range{Lo: NoLow, Hi: hi} }

// AtMost returns value <= hi.
func AtMost(hi int64) Range { return Range{Lo: NoLow, Hi: hi, HiIncl: true} }

// GreaterThan returns value > lo.
func GreaterThan(lo int64) Range { return Range{Lo: lo, Hi: NoHigh} }

// AtLeast returns value >= lo.
func AtLeast(lo int64) Range { return Range{Lo: lo, Hi: NoHigh, LoIncl: true} }

// Matches reports whether v satisfies the predicate.
func (r Range) Matches(v int64) bool {
	if r.Lo != NoLow {
		if r.LoIncl {
			if v < r.Lo {
				return false
			}
		} else if v <= r.Lo {
			return false
		}
	}
	if r.Hi != NoHigh {
		if r.HiIncl {
			if v > r.Hi {
				return false
			}
		} else if v >= r.Hi {
			return false
		}
	}
	return true
}

// Select scans the column view and returns the absolute head oids of
// matching tuples in ascending order (MonetDB's algebra.uselect /
// algebra.subselect). The oids are absolute so that partitioned selects over
// sibling views concatenate into exactly the serial result.
func Select(col *storage.Column, pred Range) ([]int64, Work) {
	return SelectInto(nil, col, pred)
}

// SelectInto is Select appending into dst's storage (dst[:0]): the executor
// passes the previous invocation's output buffer of the same cached
// instruction, so steady-state serving allocates nothing here. A nil dst
// reproduces Select's allocation exactly.
func SelectInto(dst []int64, col *storage.Column, pred Range) ([]int64, Work) {
	vals := col.Values()
	seq := col.Seq()
	out := dst[:0]
	if cap(out) == 0 {
		out = make([]int64, 0, len(vals)/4+1)
	}
	for i, v := range vals {
		if pred.Matches(v) {
			out = append(out, seq+int64(i))
		}
	}
	w := Work{
		BytesSeqRead: col.Bytes(),
		BytesWritten: int64(len(out)) * 8,
		TuplesIn:     int64(len(vals)),
		TuplesOut:    int64(len(out)),
		// The logical claim is the emitted selection, not the buffer's
		// happenstance capacity: recycled buffers (the engine pool) would
		// otherwise make profiled Work depend on allocator history.
		MemClaimBytes: int64(len(out)) * 8,
	}
	return out, w
}

// SelectWithCands refines an existing candidate oid list against the view:
// the two-input filter-operator semantics the paper discusses in §2.2
// ("accepts column and also a bit vector from another selection operator's
// output"). Candidates outside the view's oid span are aligned away first
// (§2.3) so partitioned refinement stays a valid access.
func SelectWithCands(col *storage.Column, pred Range, cands []int64) ([]int64, Work, int) {
	return SelectWithCandsInto(nil, col, pred, cands)
}

// SelectWithCandsInto is SelectWithCands appending into dst's storage; see
// SelectInto for the buffer-reuse contract.
func SelectWithCandsInto(dst []int64, col *storage.Column, pred Range, cands []int64) ([]int64, Work, int) {
	aligned, dropped := storage.AlignOids(cands, col.Seq(), col.EndSeq())
	out := dst[:0]
	if cap(out) == 0 {
		out = make([]int64, 0, len(aligned)/2+1)
	}
	for _, oid := range aligned {
		if pred.Matches(col.ValueAtOid(oid)) {
			out = append(out, oid)
		}
	}
	w := Work{
		BytesSeqRead:   int64(len(cands)) * 8,
		BytesWritten:   int64(len(out)) * 8,
		TuplesIn:       int64(len(cands)),
		TuplesOut:      int64(len(out)),
		FootprintBytes: col.Bytes(),
		MemClaimBytes:  int64(len(out)) * 8,
	}
	// Candidate lists from selects are ascending, so the driven accesses are
	// a forward skip-scan — effectively sequential for the prefetcher.
	// Unsorted candidates pay random-access cost instead.
	if isAscending(aligned) {
		w.BytesSeqRead += int64(len(aligned)) * 8
	} else {
		w.BytesRandRead += int64(len(aligned)) * 8
	}
	return out, w, dropped
}

// isAscending reports whether oids are in non-decreasing order, the access
// pattern distinction the cost model uses (serial vs random access, §4.1).
func isAscending(oids []int64) bool {
	for i := 1; i < len(oids); i++ {
		if oids[i] < oids[i-1] {
			return false
		}
	}
	return true
}

// LikeKind selects the string-match flavour of SelectLike.
type LikeKind int

const (
	// LikeContains matches LIKE '%pat%'.
	LikeContains LikeKind = iota
	// LikePrefix matches LIKE 'pat%'.
	LikePrefix
)

// SelectLike scans a dictionary-coded column view and returns absolute head
// oids whose string matches (or, with anti, does not match) the pattern. The
// dictionary is matched once and the column scan tests code membership — the
// standard columnar batstr.like evaluation.
func SelectLike(col *storage.Column, pattern string, kind LikeKind, anti bool) ([]int64, Work) {
	dict := col.Dict()
	if dict == nil {
		panic("algebra: SelectLike over a non-string column " + col.Name())
	}
	var member []bool
	switch kind {
	case LikePrefix:
		member = dict.MatchPrefix(pattern)
	default:
		member = dict.MatchSubstring(pattern)
	}
	vals := col.Values()
	seq := col.Seq()
	out := make([]int64, 0, len(vals)/8+1)
	for i, c := range vals {
		if member[c] != anti {
			out = append(out, seq+int64(i))
		}
	}
	w := Work{
		BytesSeqRead:   col.Bytes() + int64(dict.Len())*16, // codes + dictionary pass
		BytesWritten:   int64(len(out)) * 8,
		TuplesIn:       int64(len(vals)),
		TuplesOut:      int64(len(out)),
		FootprintBytes: int64(len(member)),
		MemClaimBytes:  int64(len(out))*8 + int64(len(member)),
	}
	return out, w
}
