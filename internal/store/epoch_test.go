package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// writeLegacyFile hand-builds an on-disk store at an older format version, as
// a daemon of that era would have left it.
func writeLegacyFile(t *testing.T, path string, version int, recs ...Record) {
	t.Helper()
	var hdr [headerLen]byte
	copy(hdr[:], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(version))
	buf := hdr[:]
	for i := range recs {
		payload, err := encodeRecord(&recs[i], version)
		if err != nil {
			t.Fatal(err)
		}
		var fh [frameLen]byte
		binary.LittleEndian.PutUint32(fh[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(fh[4:], crc32.Checksum(payload, crcTable))
		buf = append(buf, fh[:]...)
		buf = append(buf, payload...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreMigratesV2ToV3: a v2-era file opens, reports the migration, and
// its records carry the documented epoch default 0 — a freshly generated
// dataset — at v3 on disk.
func TestStoreMigratesV2ToV3(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	recs := []Record{testRecord(0), testRecord(1)}
	writeLegacyFile(t, path, FormatV2, recs...)

	s := mustOpen(t, path)
	st := s.Stats()
	if st.MigratedFromVersion != FormatV2 || st.Version != CurrentFormat {
		t.Fatalf("migration not reported: %+v", st)
	}
	for _, want := range recs {
		got, ok := s.Get(want.Fingerprint)
		if !ok {
			t.Fatalf("record %s lost in migration", want.Fingerprint)
		}
		if got.Epoch != 0 {
			t.Fatalf("migrated record carries epoch %d, want the default 0", got.Epoch)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("migrated record mismatch:\n got  %+v\n want %+v", got, want)
		}
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatV3 {
		t.Fatalf("file at version %d after migration, want %d", v, FormatV3)
	}
}

// TestStoreEpochRoundTrip: a non-zero epoch survives put, reopen, and
// compaction.
func TestStoreEpochRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	s := mustOpen(t, path)
	rec := testRecord(0)
	rec.Epoch = 7
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, path)
	defer s2.Close()
	got, ok := s2.Get(rec.Fingerprint)
	if !ok {
		t.Fatal("record lost")
	}
	if got.Epoch != 7 {
		t.Fatalf("epoch = %d, want 7", got.Epoch)
	}
}

// TestCompactionRacesSynchronizer hammers the store with concurrent
// synchronizer batches, direct puts, and explicit compactions. Run under
// -race this pins the locking discipline between the write-behind path and
// compaction; afterwards every fingerprint must hold its newest epoch.
func TestCompactionRacesSynchronizer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	s := mustOpen(t, path)
	s.NoAutoCompact = true // compaction timing is driven explicitly below
	sy := NewSynchronizer(s)

	const fps = 16
	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := 0; i < fps; i += 2 {
				rec := testRecord(i)
				rec.Epoch = int64(r)
				sy.Enqueue(rec)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := 1; i < fps; i += 2 {
				rec := testRecord(i)
				rec.Epoch = int64(r)
				if err := s.Put(rec); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds/2; r++ {
			if err := s.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	sy.Flush()
	if err := sy.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != fps {
		t.Fatalf("store holds %d records, want %d", s.Len(), fps)
	}
	// Puts of each parity stream are ordered, so the live record per
	// fingerprint must carry the final round's epoch.
	for i := 0; i < fps; i++ {
		rec, ok := s.Get(fmt.Sprintf("fp-%04d", i))
		if !ok || rec.Epoch != rounds-1 {
			t.Fatalf("fp-%04d: ok=%v epoch=%d, want %d", i, ok, rec.Epoch, rounds-1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the compacted+appended file must load every record.
	s2 := mustOpen(t, path)
	defer s2.Close()
	if s2.Len() != fps {
		t.Fatalf("reopened store holds %d records, want %d", s2.Len(), fps)
	}
}

// TestTornTailAfterCrashMidCompaction simulates a crash between compaction's
// temp-file write and the rename — plus a torn append on the original file —
// and verifies recovery: the .compact residue is ignored and the torn tail
// truncated back to the last intact record.
func TestTornTailAfterCrashMidCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	s := mustOpen(t, path)
	s.NoAutoCompact = true
	for i := 0; i < 4; i++ {
		if err := s.Put(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash residue 1: a half-written compaction temp file.
	if err := os.WriteFile(path+".compact", []byte("APQSTORE torn compaction residue"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash residue 2: a torn append on the log itself — a frame header
	// promising more payload than exists.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var fh [frameLen]byte
	binary.LittleEndian.PutUint32(fh[:], 1<<20)
	if _, err := f.Write(fh[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, path)
	if s2.Len() != 4 {
		t.Fatalf("recovered %d records, want 4", s2.Len())
	}
	// The store must remain fully writable and compactable after recovery.
	rec := testRecord(9)
	rec.Epoch = 3
	if err := s2.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, path)
	defer s3.Close()
	if s3.Len() != 5 {
		t.Fatalf("post-recovery store holds %d records, want 5", s3.Len())
	}
}
