package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate")
	}
	rec := fuzzSeedRecord()
	write := func(dir, name string, lines ...string) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n"
		for _, l := range lines {
			body += l + "\n"
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	recDir := filepath.Join("testdata", "fuzz", "FuzzDecodeRecord")
	for v := FormatV1; v <= CurrentFormat; v++ {
		payload, err := encodeRecord(&rec, v)
		if err != nil {
			t.Fatal(err)
		}
		write(recDir, fmt.Sprintf("valid-v%d", v),
			"[]byte("+strconv.Quote(string(payload))+")", fmt.Sprintf("int(%d)", v))
		write(recDir, fmt.Sprintf("truncated-v%d", v),
			"[]byte("+strconv.Quote(string(payload[:len(payload)/2]))+")", fmt.Sprintf("int(%d)", v))
	}
	expDir := filepath.Join("testdata", "fuzz", "FuzzDecodeExport")
	doc, err := EncodeRecords([]Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	write(expDir, "valid-doc", "[]byte("+strconv.Quote(string(doc))+")")
	write(expDir, "truncated-doc", "[]byte("+strconv.Quote(string(doc[:len(doc)-3]))+")")
	write(expDir, "header-only", "[]byte("+strconv.Quote(string(doc[:exportHeaderLen]))+")")
}
