package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// File layout: an 8-byte magic, a little-endian uint32 format version, then
// CRC-framed record payloads appended in write order. Later frames supersede
// earlier ones with the same fingerprint; compaction rewrites the file with
// exactly one frame per live fingerprint, sorted, via temp-file + rename so
// a crash at any point leaves either the old file or the new one.
var fileMagic = [8]byte{'A', 'P', 'Q', 'S', 'T', 'O', 'R', 'E'}

const (
	headerLen = 12 // magic + version
	frameLen  = 8  // payload length + CRC32 (Castagnoli)

	// maxPayload bounds a frame before allocation — anything larger is a
	// torn or garbage length field, not a record.
	maxPayload = 64 << 20

	// compactMinDead is the floor of superseded bytes below which automatic
	// compaction never triggers, so small stores do not churn the file.
	compactMinDead = 256 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Store is the embedded convergence store: an in-memory fingerprint index
// over a single append-log file. Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	path string
	f    *os.File

	recs      map[string]Record
	size      int64 // current file size
	liveBytes int64 // frame bytes of the newest record per fingerprint
	deadBytes int64 // frame bytes superseded by later puts

	lastCompaction time.Time
	migratedFrom   int // pre-migration version, 0 if the file was born current
	closed         bool

	// NoAutoCompact disables the dead-bytes-triggered compaction inside
	// Put; Compact must then be called explicitly. Tests use it to examine
	// log growth.
	NoAutoCompact bool
}

// Open opens or creates the store at path. Files written by older format
// versions are migrated to CurrentFormat (the file is rewritten); files
// written by newer versions are rejected. A torn tail — the residue of a
// crash mid-append — is truncated back to the last intact record.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	s := &Store{path: path, f: f, recs: make(map[string]Record)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) load() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	if fi.Size() == 0 {
		var hdr [headerLen]byte
		copy(hdr[:], fileMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:], CurrentFormat)
		if _, err := s.f.Write(hdr[:]); err != nil {
			return fmt.Errorf("store: initialize %s: %w", s.path, err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: initialize %s: %w", s.path, err)
		}
		s.size = headerLen
		return nil
	}

	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("store: read %s: %w", s.path, err)
	}
	if len(data) < headerLen || [8]byte(data[:8]) != fileMagic {
		return fmt.Errorf("store: %s is not a convergence store (bad magic)", s.path)
	}
	version := int(binary.LittleEndian.Uint32(data[8:12]))
	if version > CurrentFormat {
		return fmt.Errorf("store: %s is format version %d, newer than this build supports (%d) — refusing to modify it", s.path, version, CurrentFormat)
	}
	if version < FormatV1 {
		return fmt.Errorf("store: %s carries invalid format version %d", s.path, version)
	}

	// Scan frames. CRC or framing failure marks a torn tail: everything
	// from that offset on is the residue of an interrupted append and is
	// truncated away. A frame whose CRC matches but whose payload does not
	// decode was written intact by an incompatible writer — that is a real
	// error, not crash residue.
	off := headerLen
	validEnd := headerLen
	for off < len(data) {
		if len(data)-off < frameLen {
			break // torn frame header
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxPayload || len(data)-off-frameLen < int(plen) {
			break // torn or garbage length
		}
		payload := data[off+frameLen : off+frameLen+int(plen)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn payload
		}
		rec, err := decodeRecord(payload, version)
		if err != nil {
			return fmt.Errorf("store: %s: record at offset %d has a valid checksum but does not decode (format version %d): %w", s.path, off, version, err)
		}
		fb := int64(frameLen + int(plen))
		if old, ok := s.recs[rec.Fingerprint]; ok {
			s.deadBytes += frameBytes(&old, version)
			s.liveBytes -= frameBytes(&old, version)
		}
		s.recs[rec.Fingerprint] = rec
		s.liveBytes += fb
		off += int(fb)
		validEnd = off
	}
	if validEnd < len(data) {
		if err := s.f.Truncate(int64(validEnd)); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", s.path, err)
		}
	}
	if _, err := s.f.Seek(int64(validEnd), io.SeekStart); err != nil {
		return fmt.Errorf("store: seek %s: %w", s.path, err)
	}
	s.size = int64(validEnd)

	if version < CurrentFormat {
		// Migrate: decodeRecord already lifted the records to the current
		// in-memory shape with the documented defaults for fields the old
		// version lacked; rewriting the file pins them at CurrentFormat.
		s.migratedFrom = version
		if err := s.compactLocked(); err != nil {
			return fmt.Errorf("store: migrate %s from format v%d: %w", s.path, version, err)
		}
	}
	return nil
}

// frameBytes returns the on-disk frame size a record occupies at version.
func frameBytes(rec *Record, version int) int64 {
	payload, err := encodeRecord(rec, version)
	if err != nil {
		return 0
	}
	return int64(frameLen + len(payload))
}

// Put writes rec, superseding any previous record with the same
// fingerprint. The write is appended and indexed immediately but not
// fsynced — call Sync (or let the Synchronizer batch it).
func (s *Store) Put(rec Record) error {
	if rec.Fingerprint == "" {
		return fmt.Errorf("store: record has no fingerprint")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	if err := s.appendLocked(&rec); err != nil {
		return err
	}
	if !s.NoAutoCompact && s.deadBytes > compactMinDead && s.deadBytes > s.liveBytes {
		return s.compactLocked()
	}
	return nil
}

func (s *Store) appendLocked(rec *Record) error {
	payload, err := encodeRecord(rec, CurrentFormat)
	if err != nil {
		return err
	}
	frame := make([]byte, frameLen, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("store: append to %s: %w", s.path, err)
	}
	if old, ok := s.recs[rec.Fingerprint]; ok {
		fb := frameBytes(&old, CurrentFormat)
		s.deadBytes += fb
		s.liveBytes -= fb
	}
	s.recs[rec.Fingerprint] = *rec
	s.size += int64(len(frame))
	s.liveBytes += int64(len(frame))
	return nil
}

// Get returns the live record for a fingerprint.
func (s *Store) Get(fp string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[fp]
	return rec, ok
}

// Records returns the live records sorted by fingerprint.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sortedLocked()
}

func (s *Store) sortedLocked() []Record {
	out := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.f.Sync()
}

// Compact rewrites the file with one frame per live fingerprint, sorted.
// Output is deterministic: two stores holding the same records compact to
// byte-identical files.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmp := s.path + ".compact"
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	var hdr [headerLen]byte
	copy(hdr[:], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], CurrentFormat)
	buf := hdr[:]
	for _, rec := range s.sortedLocked() {
		payload, err := encodeRecord(&rec, CurrentFormat)
		if err != nil {
			tf.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		var fh [frameLen]byte
		binary.LittleEndian.PutUint32(fh[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(fh[4:], crc32.Checksum(payload, crcTable))
		buf = append(buf, fh[:]...)
		buf = append(buf, payload...)
	}
	if _, err := tf.Write(buf); err != nil {
		tf.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: reopen: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: seek: %w", err)
	}
	s.f.Close()
	s.f = f
	s.size = int64(len(buf))
	s.liveBytes = int64(len(buf) - headerLen)
	s.deadBytes = 0
	s.lastCompaction = time.Now()
	return nil
}

// Close syncs and closes the file. Idempotent: second and later calls are
// no-ops.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	serr := s.f.Sync()
	cerr := s.f.Close()
	if serr != nil {
		return fmt.Errorf("store: close %s: %w", s.path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("store: close %s: %w", s.path, cerr)
	}
	return nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Stats is the store's observable state for /stats.
type Stats struct {
	// Version is the on-disk format version (always CurrentFormat once
	// open, since Open migrates).
	Version int `json:"version"`
	// Records is the live record count.
	Records int `json:"records"`
	// FileBytes is the log file's current size.
	FileBytes int64 `json:"file_bytes"`
	// DeadBytes is the portion of the file superseded by newer records —
	// reclaimed at the next compaction.
	DeadBytes int64 `json:"dead_bytes"`
	// LastCompactionUnixMs is the wall-clock time of the last compaction in
	// this process (0 = none since open).
	LastCompactionUnixMs int64 `json:"last_compaction_unix_ms,omitempty"`
	// MigratedFromVersion is the format version the file carried before
	// Open migrated it (0 = file was already current).
	MigratedFromVersion int `json:"migrated_from_version,omitempty"`
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Version:             CurrentFormat,
		Records:             len(s.recs),
		FileBytes:           s.size,
		DeadBytes:           s.deadBytes,
		MigratedFromVersion: s.migratedFrom,
	}
	if !s.lastCompaction.IsZero() {
		st.LastCompactionUnixMs = s.lastCompaction.UnixMilli()
	}
	return st
}
