package store

import "sync"

// Synchronizer is the write-behind path between the plan-session caches and
// the store. Persistence hooks run on the serving goroutines at convergence
// and eviction time — both cold events — so all they may do is enqueue;
// the synchronizer's single background goroutine drains the queue in
// batches and fsyncs once per batch. Enqueue allocates at most the queue
// append and never blocks on the disk.
type Synchronizer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	st     *Store
	queue  []Record
	busy   int // records handed to the worker, not yet written
	closed bool
	done   chan struct{}

	written int
	err     error // first async write error, surfaced by Close
}

// NewSynchronizer starts the background writer over st.
func NewSynchronizer(st *Store) *Synchronizer {
	sy := &Synchronizer{st: st, done: make(chan struct{})}
	sy.cond = sync.NewCond(&sy.mu)
	go sy.run()
	return sy
}

// Enqueue schedules rec for persistence. After Close it is a no-op: a
// record raced with shutdown is lost from the store (it will simply
// re-converge after the next restart), never a panic.
func (sy *Synchronizer) Enqueue(rec Record) {
	sy.mu.Lock()
	if !sy.closed {
		sy.queue = append(sy.queue, rec)
		sy.cond.Broadcast()
	}
	sy.mu.Unlock()
}

// QueueDepth reports records accepted but not yet durably written.
func (sy *Synchronizer) QueueDepth() int {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	return len(sy.queue) + sy.busy
}

// Written reports records durably written since start.
func (sy *Synchronizer) Written() int {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	return sy.written
}

// Flush blocks until every record enqueued before the call is written and
// synced (or the synchronizer is closed).
func (sy *Synchronizer) Flush() {
	sy.mu.Lock()
	for (len(sy.queue) > 0 || sy.busy > 0) && !sy.closed {
		sy.cond.Wait()
	}
	sy.mu.Unlock()
}

// Close drains the queue, stops the background writer, and returns the
// first write error encountered over the synchronizer's lifetime.
// Idempotent. Close does not close the store itself.
func (sy *Synchronizer) Close() error {
	sy.mu.Lock()
	if sy.closed {
		sy.mu.Unlock()
		<-sy.done
		sy.mu.Lock()
		err := sy.err
		sy.mu.Unlock()
		return err
	}
	sy.closed = true
	sy.cond.Broadcast()
	sy.mu.Unlock()
	<-sy.done
	sy.mu.Lock()
	err := sy.err
	sy.mu.Unlock()
	return err
}

func (sy *Synchronizer) run() {
	defer close(sy.done)
	for {
		sy.mu.Lock()
		for len(sy.queue) == 0 && !sy.closed {
			sy.cond.Wait()
		}
		if len(sy.queue) == 0 && sy.closed {
			sy.mu.Unlock()
			return
		}
		batch := sy.queue
		sy.queue = nil
		sy.busy = len(batch)
		sy.mu.Unlock()

		var batchErr error
		wrote := 0
		for i := range batch {
			if err := sy.st.Put(batch[i]); err != nil {
				batchErr = err
				break
			}
			wrote++
		}
		if batchErr == nil {
			batchErr = sy.st.Sync()
		}

		sy.mu.Lock()
		sy.written += wrote
		if batchErr != nil && sy.err == nil {
			sy.err = batchErr
		}
		sy.busy = 0
		sy.cond.Broadcast()
		sy.mu.Unlock()
	}
}
