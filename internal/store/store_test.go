package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cost"
)

func testRecord(i int) Record {
	return Record{
		Fingerprint:  fmt.Sprintf("fp-%04d", i),
		DBIdentity:   "tpch:sf=0.5:seed=42",
		Tenant:       "",
		Query:        fmt.Sprintf("tpch:q%d", i),
		PlanBytes:    []byte{0xDE, 0xAD, byte(i)},
		History:      []float64{100, 60, 40, float64(30 + i)},
		Outliers:     []int{2},
		Cores:        8,
		ExtraRuns:    8,
		GMEThreshold: 0.02,
		HasCost:      true,
		CostParams:   cost.Default(),
	}
}

func mustOpen(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	s := mustOpen(t, path)
	for i := 0; i < 10; i++ {
		if err := s.Put(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	s2 := mustOpen(t, path)
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reopened store has %d records, want 10", s2.Len())
	}
	for i := 0; i < 10; i++ {
		want := testRecord(i)
		got, ok := s2.Get(want.Fingerprint)
		if !ok {
			t.Fatalf("record %s missing after reopen", want.Fingerprint)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %s mismatch:\n got  %+v\n want %+v", want.Fingerprint, got, want)
		}
	}
}

func TestStoreSupersede(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	s := mustOpen(t, path)
	s.NoAutoCompact = true
	rec := testRecord(1)
	for pass := 0; pass < 5; pass++ {
		rec.History = append(rec.History, float64(pass))
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (later puts supersede)", s.Len())
	}
	got, _ := s.Get(rec.Fingerprint)
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("Get returned a stale version: %+v", got)
	}
	if st := s.Stats(); st.DeadBytes == 0 {
		t.Fatal("superseded records not accounted as dead bytes")
	}
	s.Close()

	// Reopen must surface only the newest version.
	s2 := mustOpen(t, path)
	defer s2.Close()
	got, _ = s2.Get(rec.Fingerprint)
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("reopen returned a stale version: %+v", got)
	}
}

func TestStoreCrashRecoveryTruncatesTornTail(t *testing.T) {
	cases := []struct {
		name string
		tail func(valid []byte) []byte // bytes to append after a valid log
	}{
		{"partial frame header", func([]byte) []byte { return []byte{7, 0} }},
		{"length beyond EOF", func([]byte) []byte {
			var fh [frameLen]byte
			binary.LittleEndian.PutUint32(fh[:], 1<<20)
			return append(fh[:], 1, 2, 3)
		}},
		{"crc mismatch", func([]byte) []byte {
			payload := []byte("garbage payload")
			var fh [frameLen]byte
			binary.LittleEndian.PutUint32(fh[:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(fh[4:], 0xBADC0DE)
			return append(fh[:], payload...)
		}},
		{"torn mid-payload", func(valid []byte) []byte {
			// A genuine half-written frame: re-append the file's own last
			// frame but stop partway through the payload.
			tail := valid[len(valid)-20:]
			return tail
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "conv.store")
			s := mustOpen(t, path)
			for i := 0; i < 3; i++ {
				if err := s.Put(testRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			valid, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail(valid)); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s2 := mustOpen(t, path)
			if s2.Len() != 3 {
				t.Fatalf("recovered %d records, want 3", s2.Len())
			}
			for i := 0; i < 3; i++ {
				want := testRecord(i)
				if got, ok := s2.Get(want.Fingerprint); !ok || !reflect.DeepEqual(got, want) {
					t.Fatalf("record %s lost or damaged by recovery", want.Fingerprint)
				}
			}
			s2.Close()
			// The torn tail must be physically gone: the file is again
			// byte-identical to the pre-crash log.
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(after, valid) {
				t.Fatalf("file not truncated to last valid record: %d bytes, want %d", len(after), len(valid))
			}
		})
	}
}

func TestStoreCompactionShrinksAndIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.store")
	pathB := filepath.Join(dir, "b.store")
	a := mustOpen(t, pathA)
	b := mustOpen(t, pathB)
	a.NoAutoCompact = true
	b.NoAutoCompact = true
	// Same records, inserted in different orders with different supersede
	// churn.
	for i := 0; i < 8; i++ {
		if err := a.Put(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		if err := a.Put(testRecord(i)); err != nil { // churn
			t.Fatal(err)
		}
	}
	for i := 7; i >= 0; i-- {
		if err := b.Put(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	grown := a.Stats().FileBytes
	if err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.FileBytes >= grown || st.DeadBytes != 0 || st.LastCompactionUnixMs == 0 {
		t.Fatalf("compaction did not shrink/reset: before %d, after %+v", grown, st)
	}
	// Post-compaction store still works and survives reopen.
	if err := a.Put(testRecord(99)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
	ra, _ := os.ReadFile(pathA)
	rb, _ := os.ReadFile(pathB)
	// a has one extra record appended after compaction; compare b against
	// a's compacted prefix.
	if !bytes.Equal(ra[:len(rb)], rb) {
		t.Fatal("same records compacted to different bytes")
	}
	s2 := mustOpen(t, pathA)
	defer s2.Close()
	if s2.Len() != 9 {
		t.Fatalf("post-compaction reopen: %d records, want 9", s2.Len())
	}
}

func TestStoreAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	s := mustOpen(t, path)
	defer s.Close()
	rec := testRecord(0)
	rec.PlanBytes = make([]byte, 32<<10) // big enough to cross compactMinDead quickly
	for i := 0; i < 40; i++ {
		rec.History[0] = float64(i)
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.LastCompactionUnixMs == 0 {
		t.Fatalf("auto-compaction never triggered: %+v", st)
	}
	// Steady state: dead bytes never exceed the trigger threshold by more
	// than one frame's worth of churn.
	if st.DeadBytes > compactMinDead+2*int64(len(rec.PlanBytes)) {
		t.Fatalf("dead bytes not reclaimed: %+v", st)
	}
}

// writeV1File hand-builds an on-disk store at format v1, as a v1-era daemon
// would have left it.
func writeV1File(t *testing.T, path string, recs ...Record) {
	t.Helper()
	var hdr [headerLen]byte
	copy(hdr[:], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatV1)
	buf := hdr[:]
	for i := range recs {
		payload, err := encodeRecord(&recs[i], FormatV1)
		if err != nil {
			t.Fatal(err)
		}
		var fh [frameLen]byte
		binary.LittleEndian.PutUint32(fh[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(fh[4:], crc32.Checksum(payload, crcTable))
		buf = append(buf, fh[:]...)
		buf = append(buf, payload...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMigratesV1ToV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	recs := []Record{testRecord(0), testRecord(1)}
	writeV1File(t, path, recs...)

	s := mustOpen(t, path)
	st := s.Stats()
	if st.MigratedFromVersion != FormatV1 || st.Version != CurrentFormat {
		t.Fatalf("migration not reported: %+v", st)
	}
	for _, want := range recs {
		got, ok := s.Get(want.Fingerprint)
		if !ok {
			t.Fatalf("record %s lost in migration", want.Fingerprint)
		}
		// v1 never recorded tenant/outliers/cost: migration defaults apply.
		if got.Tenant != "" || got.Outliers != nil || got.HasCost {
			t.Fatalf("migrated record carries fields v1 could not store: %+v", got)
		}
		want.Tenant, want.Outliers, want.HasCost, want.CostParams = "", nil, false, cost.Params{}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("migrated record mismatch:\n got  %+v\n want %+v", got, want)
		}
	}
	s.Close()

	// The migration rewrote the file: on disk it is now current, and
	// reopening it is a plain (non-migrating) open.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != CurrentFormat {
		t.Fatalf("file still at version %d after migration", v)
	}
	s2 := mustOpen(t, path)
	defer s2.Close()
	if st := s2.Stats(); st.MigratedFromVersion != 0 || s2.Len() != 2 {
		t.Fatalf("reopen after migration: %+v, %d records", st, s2.Len())
	}
}

func TestStoreRejectsFutureVersionAndForeignFiles(t *testing.T) {
	dir := t.TempDir()

	future := filepath.Join(dir, "future.store")
	var hdr [headerLen]byte
	copy(hdr[:], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], 99)
	if err := os.WriteFile(future, hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(future); err == nil {
		t.Fatal("Open accepted a future format version")
	} else if got := err.Error(); !bytes.Contains([]byte(got), []byte("version 99")) {
		t.Fatalf("future-version error does not name the version: %v", err)
	}

	foreign := filepath.Join(dir, "foreign.store")
	if err := os.WriteFile(foreign, []byte("PK\x03\x04 definitely not ours"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(foreign); err == nil {
		t.Fatal("Open accepted a foreign file")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, filepath.Join(dir, "a.store"))
	defer a.Close()
	for i := 0; i < 6; i++ {
		if err := a.Put(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	exp1 := filepath.Join(dir, "plans.apqx")
	n, err := a.Export(exp1)
	if err != nil || n != 6 {
		t.Fatalf("Export = %d, %v", n, err)
	}

	b := mustOpen(t, filepath.Join(dir, "b.store"))
	defer b.Close()
	if n, err := b.Import(exp1); err != nil || n != 6 {
		t.Fatalf("Import = %d, %v", n, err)
	}
	if !reflect.DeepEqual(a.Records(), b.Records()) {
		t.Fatal("imported store's records differ from exporter's")
	}

	// Export → import → export is bit-identical.
	exp2 := filepath.Join(dir, "plans2.apqx")
	if _, err := b.Export(exp2); err != nil {
		t.Fatal(err)
	}
	d1, _ := os.ReadFile(exp1)
	d2, _ := os.ReadFile(exp2)
	if !bytes.Equal(d1, d2) {
		t.Fatal("export round trip is not bit-identical")
	}
}

func TestImportRejectsCorruptAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, filepath.Join(dir, "s.store"))
	defer s.Close()
	if err := s.Put(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	exp := filepath.Join(dir, "plans.apqx")
	if _, err := s.Export(exp); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(exp)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	futureHdr := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(futureHdr[8:], 77)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xFF
	truncated := valid[:len(valid)-5]
	trailing := append(append([]byte(nil), valid...), 1, 2, 3)

	cases := map[string]string{
		"foreign magic":  write("x1", []byte("not an export file at all....")),
		"future version": write("x2", futureHdr),
		"corrupt frame":  write("x3", flipped),
		"truncated":      write("x4", truncated),
		"trailing bytes": write("x5", trailing),
	}
	for name, p := range cases {
		if _, err := s.Import(p); err == nil {
			t.Errorf("%s: Import accepted the file", name)
		} else if s.Len() != 1 {
			t.Errorf("%s: failed import mutated the store", name)
		}
	}
	// The future-version error must name both versions.
	if _, err := s.Import(cases["future version"]); err == nil ||
		!bytes.Contains([]byte(err.Error()), []byte("version 77")) {
		t.Fatalf("future-version import error does not name the version: %v", err)
	}
}

func TestImportAcceptsV1Export(t *testing.T) {
	dir := t.TempDir()
	// A v1-era export: same framing, version header 1, v1 payloads.
	rec := testRecord(3)
	payload, err := encodeRecord(&rec, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [exportHeaderLen]byte
	copy(hdr[:], exportMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatV1)
	binary.LittleEndian.PutUint32(hdr[12:], 1)
	var fh [frameLen]byte
	binary.LittleEndian.PutUint32(fh[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fh[4:], crc32.Checksum(payload, crcTable))
	p := filepath.Join(dir, "old.apqx")
	if err := os.WriteFile(p, append(append(hdr[:], fh[:]...), payload...), 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, filepath.Join(dir, "s.store"))
	defer s.Close()
	if n, err := s.Import(p); err != nil || n != 1 {
		t.Fatalf("Import v1 export = %d, %v", n, err)
	}
	got, ok := s.Get(rec.Fingerprint)
	if !ok || got.HasCost || got.Tenant != "" || got.Outliers != nil {
		t.Fatalf("v1 import did not apply migration defaults: %+v", got)
	}
}

func TestSynchronizerWriteBehind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	s := mustOpen(t, path)
	defer s.Close()
	sy := NewSynchronizer(s)
	for i := 0; i < 50; i++ {
		sy.Enqueue(testRecord(i))
	}
	sy.Flush()
	if got := sy.QueueDepth(); got != 0 {
		t.Fatalf("queue depth %d after Flush", got)
	}
	if s.Len() != 50 {
		t.Fatalf("store has %d records after flush, want 50", s.Len())
	}
	if sy.Written() != 50 {
		t.Fatalf("Written = %d, want 50", sy.Written())
	}
	if err := sy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sy.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	sy.Enqueue(testRecord(99)) // after close: dropped, not a panic
	if s.Len() != 50 {
		t.Fatalf("enqueue after close reached the store")
	}
}

func TestSynchronizerCloseDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conv.store")
	s := mustOpen(t, path)
	sy := NewSynchronizer(s)
	for i := 0; i < 200; i++ {
		sy.Enqueue(testRecord(i))
	}
	if err := sy.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 200 {
		t.Fatalf("Close lost queued records: %d of 200", s.Len())
	}
	s.Close()
	s2 := mustOpen(t, path)
	defer s2.Close()
	if s2.Len() != 200 {
		t.Fatalf("reopen after Close-drain: %d of 200", s2.Len())
	}
}
