// Package store is the embedded, crash-safe convergence store behind warm
// restarts (ROADMAP item 2). It persists one record per converged
// plan-session — fingerprint, tenant dataset identity, the best plan in its
// canonical serialized form, the convergence history, and the engine's cost
// calibration — in a single append-log file with CRC-framed records,
// truncate-to-last-valid crash recovery, and periodic compaction. Pure Go,
// no cgo, no dependencies beyond the standard library and the repo's own
// plan/cost packages.
//
// The on-disk schema carries an explicit format version. Version bumps
// follow one discipline: old versions keep a decoder forever, Open migrates
// old files forward by rewriting them at the current version, and unknown
// (future) versions are rejected with an error, never guessed at. The
// v1→v2 migration (v2 added per-record tenant names, outlier runs, and the
// cost calibration) is the template.
package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cost"
)

// Store format versions. CurrentFormat is what new files and new records
// are written at; every older version listed here can still be read and is
// migrated forward on Open.
const (
	// FormatV1 recorded {fingerprint, db identity, query, plan, history,
	// convergence config}.
	FormatV1 = 1
	// FormatV2 added the tenant name, the outlier-run list, and the cost
	// calibration the history was measured under.
	FormatV2 = 2
	// FormatV3 added the dataset epoch the session converged at. Records
	// migrated from older versions carry epoch 0 — the epoch of a freshly
	// generated dataset — so pre-epoch records rehydrate hot on unmutated
	// data and as warm seeds after any mutation, exactly like v3 records.
	FormatV3 = 3

	CurrentFormat = FormatV3
)

// Record is one persisted converged session.
type Record struct {
	// Fingerprint is the plan-session cache key: hash of the tenant's
	// dataset identity and the query.
	Fingerprint string
	// DBIdentity is the dataset identity the session converged against.
	// Rehydration refuses records whose identity no longer matches the
	// serving tenant's — a stale plan for different data is never merged.
	DBIdentity string
	// Tenant names the owning tenant ("" = the daemon's default tenant).
	// Since v2.
	Tenant string
	// Query is the cached query in its cache-key form (named query or
	// builder-spec JSON).
	Query string
	// PlanBytes is the best plan in canonical plan.Encode form.
	PlanBytes []byte
	// History is the per-run execution-time sequence; replaying it through
	// the convergence algorithm reconstructs the session's state exactly.
	History []float64
	// Outliers are the runs convergence flagged as noise peaks. Since v2.
	Outliers []int
	// Cores, ExtraRuns, GMEThreshold are the session's ConvergenceConfig —
	// the replay must run under the same calibration that produced History.
	Cores        int
	ExtraRuns    int
	GMEThreshold float64
	// HasCost marks whether CostParams was recorded. Records migrated from
	// v1 have no calibration (HasCost=false) and rehydrate against any
	// engine. Since v2.
	HasCost bool
	// CostParams is the engine cost calibration the history was measured
	// under; rehydration skips records whose calibration differs from the
	// serving engine's. Since v2.
	CostParams cost.Params
	// Epoch is the tenant dataset's mutation epoch the session converged at
	// (0 = the dataset as generated). Rehydration compares it against the
	// live tenant's epoch: a mismatch means the plan was learned on other
	// data — still correct (partitions are binary-rational ranges), but its
	// measurements are stale, so the record rehydrates as a warm seed, never
	// as served-converged. Since v3.
	Epoch int64
}

// encodeRecord renders rec at the given format version. Encoding is
// deterministic — identical records produce identical bytes — which is what
// makes compaction and export output reproducible bit-for-bit.
func encodeRecord(rec *Record, version int) ([]byte, error) {
	switch version {
	case FormatV1, FormatV2, FormatV3:
	default:
		return nil, fmt.Errorf("store: cannot encode record at unknown format version %d", version)
	}
	buf := make([]byte, 0, 64+len(rec.Fingerprint)+len(rec.DBIdentity)+len(rec.Query)+len(rec.PlanBytes)+8*len(rec.History))
	buf = appendString(buf, rec.Fingerprint)
	buf = appendString(buf, rec.DBIdentity)
	if version >= FormatV2 {
		buf = appendString(buf, rec.Tenant)
	}
	buf = appendString(buf, rec.Query)
	buf = appendBytes(buf, rec.PlanBytes)
	buf = binary.AppendUvarint(buf, uint64(len(rec.History)))
	for _, h := range rec.History {
		buf = appendFloat(buf, h)
	}
	if version >= FormatV2 {
		buf = binary.AppendUvarint(buf, uint64(len(rec.Outliers)))
		for _, o := range rec.Outliers {
			buf = binary.AppendUvarint(buf, uint64(o))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(rec.Cores))
	buf = binary.AppendUvarint(buf, uint64(rec.ExtraRuns))
	buf = appendFloat(buf, rec.GMEThreshold)
	if version >= FormatV2 {
		if rec.HasCost {
			buf = append(buf, 1)
			buf = appendCost(buf, rec.CostParams)
		} else {
			buf = append(buf, 0)
		}
	}
	if version >= FormatV3 {
		buf = binary.AppendUvarint(buf, uint64(rec.Epoch))
	}
	return buf, nil
}

// decodeRecord parses a record payload written at the given format version
// and migrates it to the current in-memory shape. Fields a version did not
// record stay at their documented migration defaults: Tenant "" (default
// tenant), Outliers nil (re-derived by replay on rehydration), HasCost
// false (no calibration check).
func decodeRecord(data []byte, version int) (Record, error) {
	switch version {
	case FormatV1, FormatV2, FormatV3:
	default:
		return Record{}, fmt.Errorf("store: cannot decode record at unknown format version %d", version)
	}
	d := &reader{buf: data}
	var rec Record
	var err error
	if rec.Fingerprint, err = d.string(); err != nil {
		return Record{}, err
	}
	if rec.DBIdentity, err = d.string(); err != nil {
		return Record{}, err
	}
	if version >= FormatV2 {
		if rec.Tenant, err = d.string(); err != nil {
			return Record{}, err
		}
	}
	if rec.Query, err = d.string(); err != nil {
		return Record{}, err
	}
	if rec.PlanBytes, err = d.bytes(); err != nil {
		return Record{}, err
	}
	nh, err := d.uvarint()
	if err != nil {
		return Record{}, err
	}
	if nh > uint64(len(data)) {
		return Record{}, fmt.Errorf("history length %d exceeds payload", nh)
	}
	if nh > 0 {
		rec.History = make([]float64, nh)
		for i := range rec.History {
			if rec.History[i], err = d.float(); err != nil {
				return Record{}, err
			}
		}
	}
	if version >= FormatV2 {
		no, err := d.uvarint()
		if err != nil {
			return Record{}, err
		}
		if no > uint64(len(data)) {
			return Record{}, fmt.Errorf("outlier count %d exceeds payload", no)
		}
		if no > 0 {
			rec.Outliers = make([]int, no)
			for i := range rec.Outliers {
				o, err := d.uvarint()
				if err != nil {
					return Record{}, err
				}
				rec.Outliers[i] = int(o)
			}
		}
	}
	cores, err := d.uvarint()
	if err != nil {
		return Record{}, err
	}
	rec.Cores = int(cores)
	extra, err := d.uvarint()
	if err != nil {
		return Record{}, err
	}
	rec.ExtraRuns = int(extra)
	if rec.GMEThreshold, err = d.float(); err != nil {
		return Record{}, err
	}
	if version >= FormatV2 {
		hb, err := d.byte()
		if err != nil {
			return Record{}, err
		}
		switch hb {
		case 0:
		case 1:
			rec.HasCost = true
			if rec.CostParams, err = d.cost(); err != nil {
				return Record{}, err
			}
		default:
			return Record{}, fmt.Errorf("invalid has-cost byte %d", hb)
		}
	}
	if version >= FormatV3 {
		ep, err := d.uvarint()
		if err != nil {
			return Record{}, err
		}
		rec.Epoch = int64(ep)
	}
	if d.off != len(data) {
		return Record{}, fmt.Errorf("%d trailing bytes after record", len(data)-d.off)
	}
	return rec, nil
}

// appendCost and (r *reader).cost serialize the cost calibration field by
// field; adding a Params field is a format break and needs a version bump.
func appendCost(buf []byte, p cost.Params) []byte {
	for _, v := range costFields(&p) {
		buf = appendFloat(buf, *v)
	}
	return buf
}

func (d *reader) cost() (cost.Params, error) {
	var p cost.Params
	for _, v := range costFields(&p) {
		f, err := d.float()
		if err != nil {
			return cost.Params{}, err
		}
		*v = f
	}
	return p, nil
}

func costFields(p *cost.Params) []*float64 {
	return []*float64{
		&p.ScanNsPerByte, &p.WriteNsPerByte,
		&p.RandNsL3, &p.RandNsMem,
		&p.HashBuildNsPerTuple,
		&p.HashProbeNsL3, &p.HashProbeNsMem,
		&p.CompareNs, &p.PackNsPerByte,
		&p.DispatchNs, &p.ExchangeNsPerTuple,
	}
}

type reader struct {
	buf []byte
	off int
}

func (d *reader) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("truncated record at offset %d", d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *reader) float() (float64, error) {
	if len(d.buf)-d.off < 8 {
		return 0, fmt.Errorf("truncated float at offset %d", d.off)
	}
	bits := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(bits), nil
}

func (d *reader) string() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

func (d *reader) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.off) {
		return nil, fmt.Errorf("field length %d exceeds payload at offset %d", n, d.off)
	}
	if n == 0 {
		return nil, nil
	}
	out := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return out, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}
