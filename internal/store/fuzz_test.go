package store

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/cost"
)

// Fuzz targets for the store's two decoders. The property under test is the
// robustness contract the append log and the replication path both rely on:
// hostile bytes — including bytes whose CRC framing is perfectly valid —
// must come back as an error, never a panic or a runaway allocation. The
// CRC only protects against corruption in flight; a malicious or buggy peer
// can frame anything.

// fuzzSeedRecord is a fully populated current-format record whose encoding
// seeds both corpora.
func fuzzSeedRecord() Record {
	return Record{
		Fingerprint:  "fp-fuzz-0001",
		DBIdentity:   "tpch:sf=0.5:seed=42",
		Tenant:       "acme",
		Query:        "tpch:q6",
		PlanBytes:    []byte{0xDE, 0xAD, 0xBE, 0xEF},
		History:      []float64{100, 60, 40, 31},
		Outliers:     []int{2},
		Cores:        8,
		ExtraRuns:    8,
		GMEThreshold: 0.02,
		HasCost:      true,
		CostParams:   cost.Default(),
		Epoch:        3,
	}
}

// FuzzDecodeRecord drives the per-record payload decoder — the bytes inside
// one CRC frame, after the checksum already passed — at every live format
// version. Valid-looking length prefixes pointing past the buffer, huge
// varint counts, and truncated tails must all error cleanly.
func FuzzDecodeRecord(f *testing.F) {
	rec := fuzzSeedRecord()
	for v := FormatV1; v <= CurrentFormat; v++ {
		payload, err := encodeRecord(&rec, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload, v)
		// Truncation seeds: every prefix family the reader walks through.
		f.Add(payload[:len(payload)/2], v)
		f.Add(payload[:1], v)
	}
	f.Add([]byte{}, CurrentFormat)
	f.Fuzz(func(t *testing.T, data []byte, version int) {
		rec, err := decodeRecord(data, version)
		if err != nil {
			return
		}
		// A payload that decodes must re-encode: decode success on bytes the
		// encoder cannot round-trip would let one hostile peer poison the
		// next hop's store file.
		if _, err := encodeRecord(&rec, CurrentFormat); err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeExport drives the whole-document APQXPORT decoder two ways: the
// raw input as a full document (hostile magic, header, framing), and the
// input wrapped in a valid header and a correct CRC frame (CRC-valid-but-
// hostile payload — the case checksums cannot catch).
func FuzzDecodeExport(f *testing.F) {
	rec := fuzzSeedRecord()
	doc, err := EncodeRecords([]Record{rec})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(doc)
	f.Add(doc[:len(doc)-3])
	f.Add(doc[:exportHeaderLen])
	f.Add([]byte("APQXPORT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := DecodeRecords(data, "fuzz"); err == nil {
			// A document that decodes must re-encode losslessly enough to
			// decode again (not bit-identical: older versions migrate).
			recs, _ := DecodeRecords(data, "fuzz")
			if _, err := EncodeRecords(recs); err != nil {
				t.Fatalf("decoded export does not re-encode: %v", err)
			}
		}
		// CRC-valid-but-hostile: frame the raw input as the single record of
		// an otherwise impeccable current-format document. The framing layer
		// passes by construction, so any failure to reject garbage here is
		// the record decoder's.
		framed := make([]byte, 0, exportHeaderLen+frameLen+len(data))
		framed = append(framed, exportMagic[:]...)
		framed = binary.LittleEndian.AppendUint32(framed, CurrentFormat)
		framed = binary.LittleEndian.AppendUint32(framed, 1)
		framed = binary.LittleEndian.AppendUint32(framed, uint32(len(data)))
		framed = binary.LittleEndian.AppendUint32(framed, crc32.Checksum(data, crcTable))
		framed = append(framed, data...)
		if recs, err := DecodeRecords(framed, "fuzz"); err == nil {
			if len(recs) != 1 {
				t.Fatalf("framed single-record document decoded to %d records", len(recs))
			}
		}
	})
}
