package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Export files are the plan-shipping interchange format: a self-describing
// snapshot of a store's live records that a second daemon imports to serve
// another daemon's converged plans. Layout: 8-byte magic, uint32 record
// format version, uint32 record count, then the records as CRC frames
// sorted by fingerprint. The sort plus the deterministic record codec make
// export → import → export reproduce the file bit-for-bit.
var exportMagic = [8]byte{'A', 'P', 'Q', 'X', 'P', 'O', 'R', 'T'}

const exportHeaderLen = 16 // magic + version + count

// EncodeRecords renders records as an APQXPORT document in memory — the
// same bytes Export writes to disk. It is the federation layer's wire
// format: a replicator encodes a batch of convergence records once and
// ships the document to every peer. Records are encoded in the order given;
// callers wanting the deterministic on-disk property sort by fingerprint
// first (Export does).
func EncodeRecords(recs []Record) ([]byte, error) {
	var hdr [exportHeaderLen]byte
	copy(hdr[:], exportMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], CurrentFormat)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(recs)))
	buf := hdr[:]
	for i := range recs {
		payload, err := encodeRecord(&recs[i], CurrentFormat)
		if err != nil {
			return nil, fmt.Errorf("store: encode records: %w", err)
		}
		var fh [frameLen]byte
		binary.LittleEndian.PutUint32(fh[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(fh[4:], crc32.Checksum(payload, crcTable))
		buf = append(buf, fh[:]...)
		buf = append(buf, payload...)
	}
	return buf, nil
}

// DecodeRecords parses an APQXPORT document from memory — the receiving
// side of EncodeRecords. src names the document in errors (a path, a peer).
// The same strictness as ReadExport applies: framing or checksum damage is
// an error, never a silent skip.
func DecodeRecords(data []byte, src string) ([]Record, error) {
	if len(data) < exportHeaderLen || [8]byte(data[:8]) != exportMagic {
		return nil, fmt.Errorf("store: %s is not a plan export file (bad magic)", src)
	}
	version := int(binary.LittleEndian.Uint32(data[8:12]))
	if version > CurrentFormat {
		return nil, fmt.Errorf("store: %s is export format version %d, newer than this build supports (%d) — upgrade before importing", src, version, CurrentFormat)
	}
	if version < FormatV1 {
		return nil, fmt.Errorf("store: %s carries invalid export format version %d", src, version)
	}
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	// Cap the allocation by what the bytes in hand could actually frame: a
	// hostile header may claim 4 billion records in a 20-byte document.
	maxFit := (len(data) - exportHeaderLen) / frameLen
	recs := make([]Record, 0, min(count, maxFit))
	off := exportHeaderLen
	for i := 0; i < count; i++ {
		if len(data)-off < frameLen {
			return nil, fmt.Errorf("store: %s: truncated at record %d of %d", src, i+1, count)
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxPayload || len(data)-off-frameLen < int(plen) {
			return nil, fmt.Errorf("store: %s: truncated at record %d of %d", src, i+1, count)
		}
		payload := data[off+frameLen : off+frameLen+int(plen)]
		if crc32.Checksum(payload, crcTable) != sum {
			return nil, fmt.Errorf("store: %s: record %d of %d fails its checksum — file is corrupt", src, i+1, count)
		}
		rec, err := decodeRecord(payload, version)
		if err != nil {
			return nil, fmt.Errorf("store: %s: record %d of %d does not decode at format version %d: %w", src, i+1, count, version, err)
		}
		recs = append(recs, rec)
		off += frameLen + int(plen)
	}
	if off != len(data) {
		return nil, fmt.Errorf("store: %s: %d trailing bytes after %d records", src, len(data)-off, count)
	}
	return recs, nil
}

// Export writes the store's live records to path, atomically (temp file +
// rename). It returns the number of records written.
func (s *Store) Export(path string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: %s is closed", s.path)
	}
	recs := s.sortedLocked()
	buf, err := EncodeRecords(recs)
	if err != nil {
		return 0, fmt.Errorf("store: export: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return 0, fmt.Errorf("store: export: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: export: %w", err)
	}
	return len(recs), nil
}

// Import merges the records of an export file written by this build's
// format version or any older one (older records are migrated on decode).
// Unlike the append log, an export file is a finished document: any framing
// or checksum damage is an error, never silently skipped or truncated.
// Imported records supersede same-fingerprint records already in the store.
// Returns the number of records imported.
func (s *Store) Import(path string) (int, error) {
	recs, err := ReadExport(path)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: %s is closed", s.path)
	}
	for i := range recs {
		if err := s.appendLocked(&recs[i]); err != nil {
			return 0, err
		}
	}
	if err := s.f.Sync(); err != nil {
		return 0, fmt.Errorf("store: import: %w", err)
	}
	return len(recs), nil
}

// ReadExport parses an export file and returns its records, migrated to the
// current format. It rejects files with foreign magic, format versions
// newer than this build, corrupt frames, or record counts that do not match
// the header — each with a distinct, actionable error.
func ReadExport(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: import %s: %w", path, err)
	}
	return DecodeRecords(data, path)
}
