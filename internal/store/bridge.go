package store

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
)

// NewRecord builds the persistent record for a converged session: the
// snapshot's best plan in canonical encoded form plus the convergence
// replay state, stamped with the cache identity (fingerprint, dataset,
// tenant, query), the dataset epoch the history was measured at, and the
// engine calibration it was measured under.
func NewRecord(fp, dbIdentity, tenant, query string, epoch int64, snap *core.Snapshot, params cost.Params) Record {
	return Record{
		Fingerprint:  fp,
		DBIdentity:   dbIdentity,
		Tenant:       tenant,
		Query:        query,
		Epoch:        epoch,
		PlanBytes:    plan.Encode(snap.BestPlan),
		History:      snap.History,
		Outliers:     snap.Outliers,
		Cores:        snap.Config.Cores,
		ExtraRuns:    snap.Config.ExtraRuns,
		GMEThreshold: snap.Config.GMEThreshold,
		HasCost:      true,
		CostParams:   params,
	}
}

// RestoreSession rebuilds the record's converged session on eng: decode the
// canonical plan, replay the convergence history. The caller checks
// identity (DBIdentity, cost calibration) before calling; this function
// checks integrity — an undecodable plan or a history that does not replay
// to convergence is an error, never a half-restored session.
func (r *Record) RestoreSession(eng *exec.Engine, mcfg core.MutationConfig) (*core.Session, error) {
	p, err := plan.Decode(r.PlanBytes)
	if err != nil {
		return nil, fmt.Errorf("store: record %s: %w", r.Fingerprint, err)
	}
	sess, err := core.RestoreSession(eng, mcfg, &core.Snapshot{
		Config: core.ConvergenceConfig{
			Cores:        r.Cores,
			ExtraRuns:    r.ExtraRuns,
			GMEThreshold: r.GMEThreshold,
		},
		History:  r.History,
		Outliers: r.Outliers,
		BestPlan: p,
	})
	if err != nil {
		return nil, fmt.Errorf("store: record %s: %w", r.Fingerprint, err)
	}
	return sess, nil
}
