package experiments

import (
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/sim"
	"repro/internal/worksteal"
)

// Figure12 reproduces the skewed-select comparison: static 8 partitions on
// 8 threads, static 128 partitions on 8 threads (work-stealing style), and
// dynamically (adaptively) sized partitions, over a column whose second
// half holds sequential clusters of identical (matching) tuples at varying
// skew percentages.
func Figure12(s Scale) (*Table, error) {
	machine := sim.TwoSocket()
	machine.PhysCoresPerSocket = 4 // 8 worker threads total, as in the paper
	machine.SMT = 1
	machine.Seed = s.Seed

	t := &Table{
		Title: "Figure 12: parallel select on skewed data (ms)",
		Headers: []string{"skew%", "static 8 parts/8 thr", "static 128 parts/8 thr (steal)",
			"dynamic (adaptive) 8 thr", "adaptive DOP"},
		Notes: []string{
			"paper: dynamic up to 60% better than static 8; competitive with 128-part stealing",
		},
	}
	for _, skew := range []int{10, 20, 30, 40, 50} {
		cat := makeSkewedColumn(s.MicroRows*2, skew, s.Seed)
		q := selectSumPlan("skewed", "v", 0, 100)

		st8, err := heuristic.Parallelize(q, cat, heuristic.Config{Partitions: 8})
		if err != nil {
			return nil, err
		}
		e1 := newEngine(cat, machine)
		_, p8, err := e1.Execute(st8)
		if err != nil {
			return nil, err
		}

		ws, err := worksteal.Plan(q, cat, 128)
		if err != nil {
			return nil, err
		}
		e2 := newEngine(cat, machine)
		_, pws, err := e2.Execute(ws)
		if err != nil {
			return nil, err
		}

		e3 := newEngine(cat, machine)
		rep, err := converge(e3, q, s.convConfig())
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", skew),
			ms(p8.Makespan()), ms(pws.Makespan()), ms(rep.GMENs),
			fmt.Sprintf("%d", rep.BestPlan.MaxDOP()),
		})
	}
	return t, nil
}
