package experiments

import (
	"strings"
	"testing"
)

// tiny returns a scale small enough for every experiment to run in
// milliseconds-to-a-few-seconds within the unit-test suite.
func tiny() Scale {
	return Scale{
		Name: "tiny", TPCHSF: 0.25, TPCDSSF: 2, MicroRows: 120_000,
		ConvCores: 4, ConvExtraRuns: 2, Clients: 3, Repeats: 1, Seed: 7,
	}
}

func checkTable(t *testing.T, tab *Table, err error, wantRows int, wantIn string) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if wantRows > 0 && len(tab.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d\n%s", len(tab.Rows), wantRows, tab.Format())
	}
	out := tab.Format()
	if !strings.Contains(out, wantIn) {
		t.Fatalf("output missing %q:\n%s", wantIn, out)
	}
	// Every row must have at least as many cells as headers minus trailing
	// free-form columns; just check non-empty cells exist.
	for i, r := range tab.Rows {
		if len(r) == 0 || r[0] == "" {
			t.Fatalf("row %d empty", i)
		}
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(tiny())
	checkTable(t, tab, err, 2, "E5-2650")
}

func TestTable4(t *testing.T) {
	tab, err := Table4(tiny())
	checkTable(t, tab, err, 2, "simple")
}

func TestFigure1(t *testing.T) {
	tab, err := Figure1(tiny())
	checkTable(t, tab, err, 3, "Q9")
	// Saturated load: all latencies positive.
	for _, r := range tab.Rows {
		for _, c := range r[1:] {
			if c == "0.000" {
				t.Fatalf("zero latency under load: %v", r)
			}
		}
	}
}

func TestFigure8(t *testing.T) {
	tab, err := Figure8(tiny())
	checkTable(t, tab, err, 4, "[0/4,1/4)")
}

func TestFigure11(t *testing.T) {
	// Heavy noise at tiny scale can abort adaptation after the very first
	// parallel run (a spiked run above serial drains the starting credit);
	// use a larger budget so the trace shows real structure.
	s := tiny()
	s.ConvCores = 8
	s.ConvExtraRuns = 4
	s.MicroRows = 500_000 // large enough that the first split clearly wins
	tab, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("convergence trace too short: %d runs\n%s", len(tab.Rows), tab.Format())
	}
	if !strings.Contains(tab.Format(), "converged after") {
		t.Fatal("missing convergence summary")
	}
}

func TestFigure12(t *testing.T) {
	tab, err := Figure12(tiny())
	checkTable(t, tab, err, 5, "50")
}

func TestFigure13(t *testing.T) {
	tab, err := Figure13(tiny())
	checkTable(t, tab, err, 20, "#")
	// First-half buckets hold no matches; second half does.
	if tab.Rows[0][1] != "0" {
		t.Fatalf("first bucket has matches: %v", tab.Rows[0])
	}
	if tab.Rows[19][1] == "0" {
		t.Fatalf("last bucket empty: %v", tab.Rows[19])
	}
}

func TestFigure14(t *testing.T) {
	tab, err := Figure14(tiny())
	checkTable(t, tab, err, 6, "10GB")
}

func TestTable2(t *testing.T) {
	tab, err := Table2(tiny())
	checkTable(t, tab, err, 3, "100GB")
}

func TestFigure15(t *testing.T) {
	tab, err := Figure15(tiny())
	checkTable(t, tab, err, 3, "3200MB")
}

func TestTable3(t *testing.T) {
	tab, err := Table3(tiny())
	checkTable(t, tab, err, 3, "16MB")
}

func TestFigure16(t *testing.T) {
	tab, err := Figure16(tiny())
	checkTable(t, tab, err, 9, "Q14")
}

func TestFigure17(t *testing.T) {
	tab, err := Figure17(tiny())
	checkTable(t, tab, err, 5, "Q1")
}

func TestFigure18(t *testing.T) {
	tab, err := Figure18(tiny())
	checkTable(t, tab, err, 9, "Q6")
}

func TestTable5(t *testing.T) {
	r, err := Table5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, r.Table, nil, 6, "# select operators")
	if !strings.Contains(r.APTomograph, "parallelism usage") ||
		!strings.Contains(r.HPTomograph, "parallelism usage") {
		t.Fatal("tomographs missing summary lines")
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{
		Title:   "t",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}, {"z", "wwww"}},
		Notes:   []string{"n1"},
	}
	out := tab.Format()
	for _, want := range []string{"== t ==", "xxx", "wwww", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestScalesAreDistinct(t *testing.T) {
	q, f := Quick(), Full()
	if q.Name == f.Name || q.TPCHSF >= f.TPCHSF || q.MicroRows >= f.MicroRows {
		t.Fatal("presets not ordered")
	}
	if q.convConfig().Cores <= 0 {
		t.Fatal("bad convergence config")
	}
}

func TestSkewedColumnDeterministic(t *testing.T) {
	a := makeSkewedColumn(10_000, 30, 5)
	b := makeSkewedColumn(10_000, 30, 5)
	av := a.MustTable("skewed").MustColumn("v").Values()
	bv := b.MustTable("skewed").MustColumn("v").Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("skewed column generation not deterministic")
		}
	}
	matches := 0
	for _, v := range av {
		if v == 7 {
			matches++
		}
	}
	if matches != 3000 {
		t.Fatalf("matches = %d, want 30%% of 10000", matches)
	}
}

func TestJoinCatalogShape(t *testing.T) {
	cat := makeJoinCatalog(5_000, 100, 3)
	big := cat.MustTable("big")
	if big.Rows() != 5_000 {
		t.Fatalf("big rows = %d", big.Rows())
	}
	for _, v := range big.MustColumn("k").Values() {
		if v < 0 || v >= 100 {
			t.Fatalf("key %d out of inner range", v)
		}
	}
}
