package experiments

import (
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/sim"
	"repro/internal/tpcds"
)

// Figure17 compares heuristic and adaptive parallelization over the five
// TPC-DS queries on the two-socket and four-socket machines. On the skewed
// TPC-DS data, adaptive plans reach "up to five times better performance"
// than heuristic plans (§4.2.2), and the two machines show similar times
// (minimal NUMA effects thanks to memory-mapped round-robin placement).
func Figure17(s Scale) (*Table, error) {
	cat := tpcds.Generate(tpcds.Config{SF: s.TPCDSSF, Seed: s.Seed})

	t := &Table{
		Title:   "Figure 17: TPC-DS isolated execution, heuristic vs adaptive (ms)",
		Headers: []string{"query", "HP 2-socket", "AP 2-socket", "HP 4-socket", "AP 4-socket", "best HP/AP"},
		Notes: []string{
			"paper: adaptive up to 5x better (skew + correct partition counts); 2S vs 4S similar (minimal NUMA effect)",
		},
	}
	maxRatio := 0.0
	for _, qn := range tpcds.QueryNumbers() {
		serial := tpcds.MustQuery(qn)
		row := []string{fmt.Sprintf("Q%d", qn)}
		var ratios []float64
		for _, machine := range []sim.Config{sim.TwoSocket(), sim.FourSocket()} {
			cores := machine.LogicalCores()
			hp, err := heuristic.Parallelize(serial, cat, heuristic.Config{Partitions: cores})
			if err != nil {
				return nil, err
			}
			engH := newEngine(cat, machine)
			_, hpProf, err := engH.Execute(hp)
			if err != nil {
				return nil, err
			}
			engA := newEngine(cat, machine)
			cc := s.convConfig()
			rep, err := converge(engA, serial, cc)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(hpProf.Makespan()), ms(rep.GMENs))
			ratios = append(ratios, hpProf.Makespan()/rep.GMENs)
		}
		best := ratios[0]
		if ratios[1] > best {
			best = ratios[1]
		}
		if best > maxRatio {
			maxRatio = best
		}
		row = append(row, fmt.Sprintf("%.1fx", best))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("max HP/AP ratio observed: %.1fx", maxRatio))
	return t, nil
}
