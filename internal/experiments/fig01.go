package experiments

import (
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/sim"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Figure1 reproduces the motivation experiment: response time of three
// heuristically parallelized TPC-H queries (Q9, Q13, Q17) at degrees of
// parallelism 8, 16 and 32, under a heavy concurrent CPU-bound workload
// that keeps every hardware thread busy. The paper's point: no single DOP
// wins for all queries under contention, so static plan generation is
// fragile.
func Figure1(s Scale) (*Table, error) {
	cat := tpchCatalog(s.TPCHSF, s.Seed)
	queries := []int{9, 13, 17}
	dops := []int{8, 16, 32}

	t := &Table{
		Title:   "Figure 1: response time (ms) vs DOP under saturated concurrent load",
		Headers: append([]string{"query"}, "dop=8", "dop=16", "dop=32"),
		Notes: []string{
			"paper: different queries prefer different DOPs under contention",
		},
	}
	for _, qn := range queries {
		row := []string{fmt.Sprintf("Q%d", qn)}
		for _, dop := range dops {
			serial := tpch.MustQuery(qn)
			hp, err := heuristic.Parallelize(serial, cat, heuristic.Config{Partitions: dop})
			if err != nil {
				return nil, err
			}
			cfg := sim.TwoSocket()
			cfg.Seed = s.Seed
			eng := newEngine(cat, cfg)
			// Saturate every hardware thread with CPU-bound work for the
			// whole measurement window (0% idleness).
			workload.SaturateCores(eng.Machine(), cfg.LogicalCores(), 100_000, 1e12)
			_, prof, err := eng.Execute(hp)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(prof.Makespan()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
