package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/plan"
)

// Figure8 demonstrates dynamic partitioning: starting from a serial select,
// each step splits the currently *widest* select clone (standing in for
// "the expensive one" — on uniform data the widest partition is the
// expensive partition), and the table lists the partition boundaries after
// each mutation, which stay aligned on the base column exactly as in the
// paper's Figure 8 A→D sequence.
func Figure8(s Scale) (*Table, error) {
	p := selectSumPlan("skewed", "v", 0, 100)
	t := &Table{
		Title:   "Figure 8: dynamic partition evolution of a select operator",
		Headers: []string{"step", "partitions (fractions of the base column)"},
		Notes:   []string{"boundaries are dyadic so every split stays aligned on the base column"},
	}
	list := func() string {
		out := ""
		for _, in := range p.Instrs {
			if in.Op == plan.OpSelect {
				if out != "" {
					out += " "
				}
				out += in.Part.String()
			}
		}
		if out == "" {
			out = "full"
		}
		return out
	}
	t.Rows = append(t.Rows, []string{"A (serial)", list()})
	for step := 0; step < 3; step++ {
		// Find the widest select clone.
		widest, widestIdx := 0.0, -1
		for i, in := range p.Instrs {
			if in.Op != plan.OpSelect {
				continue
			}
			w := float64(in.Part.HiNum-in.Part.LoNum) / float64(in.Part.Den)
			if w > widest {
				widest, widestIdx = w, i
			}
		}
		np, _, err := core.Parallelize(p, widestIdx, 2)
		if err != nil {
			return nil, err
		}
		p = np
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%c", 'B'+step), list()})
	}
	return t, nil
}
