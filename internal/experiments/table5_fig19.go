package experiments

import (
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/sim"
	"repro/internal/tpch"
)

// Table5Fig19 reproduces the Q14 plan-statistics comparison (Table 5) and
// the multi-core-utilization tomographs (Figures 19/20): the adaptive plan
// uses far fewer operators and a fraction of the machine, at similar or
// better isolated response time.
type Table5Result struct {
	Table       *Table
	APTomograph string
	HPTomograph string
}

// Table5 runs the experiment.
func Table5(s Scale) (*Table5Result, error) {
	cat := tpchCatalog(s.TPCHSF, s.Seed)
	serial := tpch.MustQuery(14)
	cores := sim.TwoSocket().LogicalCores()

	engA := newEngine(cat, sim.TwoSocket())
	rep, err := converge(engA, serial, s.convConfig())
	if err != nil {
		return nil, err
	}
	ap := rep.BestPlan
	engA2 := newEngine(cat, sim.TwoSocket())
	_, apProf, err := engA2.Execute(ap)
	if err != nil {
		return nil, err
	}

	hp, err := heuristic.Parallelize(serial, cat, heuristic.Config{Partitions: cores})
	if err != nil {
		return nil, err
	}
	engH := newEngine(cat, sim.TwoSocket())
	_, hpProf, err := engH.Execute(hp)
	if err != nil {
		return nil, err
	}

	aps, hps := heuristic.Stats(ap), heuristic.Stats(hp)
	t := &Table{
		Title:   "Table 5: AP and HP TPC-H Q14 plan statistics",
		Headers: []string{"metric", "AP", "HP"},
		Notes: []string{
			"paper: 10 vs 65 selects, 16 vs 32 joins, 35% vs 75% utilization",
		},
	}
	t.Rows = append(t.Rows,
		[]string{"# select operators", fmt.Sprintf("%d", aps.Selects), fmt.Sprintf("%d", hps.Selects)},
		[]string{"# join operators", fmt.Sprintf("%d", aps.Joins), fmt.Sprintf("%d", hps.Joins)},
		[]string{"# instructions", fmt.Sprintf("%d", aps.Instrs), fmt.Sprintf("%d", hps.Instrs)},
		[]string{"max DOP", fmt.Sprintf("%d", aps.MaxDOP), fmt.Sprintf("%d", hps.MaxDOP)},
		[]string{"% multi-core utilization",
			fmt.Sprintf("%.1f", apProf.Utilization()*100),
			fmt.Sprintf("%.1f", hpProf.Utilization()*100)},
		[]string{"response time (ms)", ms(apProf.Makespan()), ms(hpProf.Makespan())},
	)
	return &Table5Result{
		Table:       t,
		APTomograph: "Figure 19 (adaptive Q14 tomograph):\n" + apProf.Tomograph(92),
		HPTomograph: "Figure 20 (heuristic Q14 tomograph):\n" + hpProf.Tomograph(92),
	}, nil
}
