package experiments

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/heuristic"
	"repro/internal/plan"
	"repro/internal/sim"
)

// q6Variant builds the Q6-style select plan with controlled output
// selectivity. The paper varies selectivity via l_quantity: 0% selectivity
// means "all output" (every scanned tuple written), 100% means "no output".
func q6Variant(outputSelectivityPct int) *plan.Plan {
	var qty algebra.Range
	switch {
	case outputSelectivityPct <= 0: // all output
		qty = algebra.AtLeast(0)
	case outputSelectivityPct >= 100: // no output
		qty = algebra.LessThan(0)
	default: // ~half output: quantities are uniform 1..50
		qty = algebra.LessThan(int64(50 - outputSelectivityPct/2))
	}
	b := plan.NewBuilder()
	qtyCol := b.Bind("lineitem", "l_quantity")
	disc := b.Bind("lineitem", "l_discount")
	price := b.Bind("lineitem", "l_extendedprice")
	s := b.Select(qtyCol, qty)
	d := b.Fetch(s, disc)
	pr := b.Fetch(s, price)
	rev := b.CalcVV(algebra.CalcMul, pr, d)
	sum := b.Aggr(algebra.AggrSum, rev)
	b.Result(sum)
	return b.Plan()
}

// Figure14 traces adaptive select-plan execution times against runs for two
// data sizes and three selectivities (the paper's 10 GB / 20 GB curves at
// 0%, 50% and 100% selectivity).
func Figure14(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 14: adaptive select plan, execution time (ms) per run",
		Headers: []string{"size", "sel%", "run0(serial)", "run2", "run4", "run8", "run16", "GME", "GMErun", "runs"},
		Notes:   []string{"paper: steep early descent; larger inputs and lower selectivity start higher"},
	}
	for _, size := range []struct {
		label string
		sf    float64
	}{{"10GB", s.TPCHSF}, {"20GB", s.TPCHSF * 2}} {
		for _, sel := range []int{0, 50, 100} {
			cat := tpchCatalog(size.sf, s.Seed)
			cfg := sim.TwoSocket()
			cfg.Seed = s.Seed
			eng := newEngine(cat, cfg)
			rep, err := converge(eng, q6Variant(sel), s.convConfig())
			if err != nil {
				return nil, err
			}
			at := func(i int) string {
				if i < len(rep.History) {
					return ms(rep.History[i])
				}
				return "-"
			}
			t.Rows = append(t.Rows, []string{
				size.label, fmt.Sprintf("%d", sel),
				at(0), at(2), at(4), at(8), at(16),
				ms(rep.GMENs), fmt.Sprintf("%d", rep.GMERun), fmt.Sprintf("%d", rep.TotalRuns),
			})
		}
	}
	return t, nil
}

// Table2 compares select-plan speed-ups (serial / parallel) of adaptive and
// heuristic parallelization across sizes and selectivities.
func Table2(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Table 2: select plan speedup vs serial (AP = adaptive, HP = heuristic)",
		Headers: []string{"size", "AP 0%", "HP 0%", "AP 50%", "HP 50%", "AP 100%", "HP 100%"},
		Notes: []string{
			"paper: speedup decreases with selectivity and increases for smaller inputs (AP)",
		},
	}
	sizes := []struct {
		label string
		sf    float64
	}{{"100GB", s.TPCHSF * 4}, {"20GB", s.TPCHSF * 2}, {"10GB", s.TPCHSF}}
	for _, size := range sizes {
		row := []string{size.label}
		for _, sel := range []int{0, 50, 100} {
			cat := tpchCatalog(size.sf, s.Seed)
			q := q6Variant(sel)

			engA := newEngine(cat, sim.TwoSocket())
			rep, err := converge(engA, q, s.convConfig())
			if err != nil {
				return nil, err
			}
			apSpeed := rep.Speedup()

			engH := newEngine(cat, sim.TwoSocket())
			_, serialProf, err := engH.Execute(q)
			if err != nil {
				return nil, err
			}
			hp, err := heuristic.Parallelize(q, cat, heuristic.Config{Partitions: 32})
			if err != nil {
				return nil, err
			}
			_, hpProf, err := engH.Execute(hp)
			if err != nil {
				return nil, err
			}
			hpSpeed := serialProf.Makespan() / hpProf.Makespan()

			row = append(row, fmt.Sprintf("%.1f", apSpeed), fmt.Sprintf("%.1f", hpSpeed))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
