// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4). Each experiment is a pure function from a Scale
// (how much data / how many adaptation runs to spend) to a structured
// result with a text rendering; cmd/experiments prints them and
// bench_test.go measures them, sharing one implementation.
//
// Absolute numbers are virtual-time milliseconds on the simulated machines
// of Table 1 (scaled 1/100, DESIGN.md §2); the quantities to compare with
// the paper are the *shapes*: who wins, by what factor, where crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for every experiment.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Scale sizes an experiment run.
type Scale struct {
	// Name labels the preset.
	Name string
	// TPCHSF is the TPC-H scale factor (SF1 ≈ 60k lineitem rows).
	TPCHSF float64
	// TPCDSSF is the TPC-DS scale factor (SF1 ≈ 28.8k fact rows).
	TPCDSSF float64
	// MicroRows sizes micro-benchmark columns (the paper's 1000M-row
	// selects and 80–400M-row join outers, scaled).
	MicroRows int
	// ConvCores / ConvExtraRuns tune the convergence budget; Quick uses a
	// smaller budget so benches finish in seconds.
	ConvCores     int
	ConvExtraRuns int
	// Clients and Repeats size concurrent workloads.
	Clients, Repeats int
	// Seed drives all generation.
	Seed int64
}

// Quick is the default preset: every experiment in seconds.
func Quick() Scale {
	return Scale{
		Name: "quick", TPCHSF: 1, TPCDSSF: 8, MicroRows: 1_000_000,
		ConvCores: 32, ConvExtraRuns: 4, Clients: 8, Repeats: 2, Seed: 42,
	}
}

// Full is the paper-shaped preset: larger data, full convergence budgets.
func Full() Scale {
	return Scale{
		Name: "full", TPCHSF: 4, TPCDSSF: 16, MicroRows: 4_000_000,
		ConvCores: 32, ConvExtraRuns: 8, Clients: 16, Repeats: 3, Seed: 42,
	}
}

func (s Scale) convConfig() core.ConvergenceConfig {
	return core.ConvergenceConfig{Cores: s.ConvCores, ExtraRuns: s.ConvExtraRuns, GMEThreshold: 0.02}
}

// newEngine builds an engine over cat on the 2-socket machine.
func newEngine(cat *storage.Catalog, cfg sim.Config) *exec.Engine {
	return exec.NewEngine(cat, cfg, cost.Default())
}

// converge runs a full adaptive session and returns its report.
func converge(eng *exec.Engine, p *plan.Plan, cc core.ConvergenceConfig) (*core.Report, error) {
	s := core.NewSession(eng, p, core.DefaultMutationConfig(), cc)
	return s.Converge()
}

// ms formats virtual nanoseconds as milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }

// makeSkewedColumn reproduces the Figure 13 distribution: half random
// tuples, then sequential clusters of identical tuples. matched values are
// those selected by predicate value 7 at the given skew percentage.
func makeSkewedColumn(rows, skewPct int, seed int64) *storage.Catalog {
	vals := make([]int64, rows)
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*2862933555777941757 + 3037000493
		return state
	}
	clusterRows := rows * skewPct / 100
	for i := range vals {
		if i >= rows/2 && i < rows/2+clusterRows {
			vals[i] = 7
		} else {
			vals[i] = int64(next()%1_000_000) + 1_000_000
		}
	}
	t := storage.NewTable("skewed")
	t.MustAddColumn(storage.NewIntColumn("v", vals))
	cat := storage.NewCatalog()
	cat.MustAdd(t)
	return cat
}

// selectSumPlan is the select micro-benchmark plan (§4.1).
func selectSumPlan(table, col string, lo, hi int64) *plan.Plan {
	b := plan.NewBuilder()
	c := b.Bind(table, col)
	s := b.Select(c, algebra.Between(lo, hi))
	f := b.Fetch(s, c)
	sum := b.Aggr(algebra.AggrSum, f)
	b.Result(sum)
	return b.Plan()
}

// joinSumPlan is the join micro-benchmark plan (§4.1.2): outer key column
// probed against a small inner; matched payloads summed.
func joinSumPlan() *plan.Plan {
	b := plan.NewBuilder()
	outer := b.Bind("big", "k")
	inner := b.Bind("small", "k")
	payload := b.Bind("small", "v")
	_, ro := b.Join(outer, inner)
	vals := b.Fetch(ro, payload)
	sum := b.Aggr(algebra.AggrSum, vals)
	b.Result(sum)
	return b.Plan()
}

// makeJoinCatalog builds the §4.1.2 micro-benchmark inputs: outerRows
// random keys over an innerRows-key dimension with payloads.
func makeJoinCatalog(outerRows, innerRows int, seed int64) *storage.Catalog {
	outer := make([]int64, outerRows)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range outer {
		state = state*6364136223846793005 + 1442695040888963407
		outer[i] = int64(state % uint64(innerRows))
	}
	inner := make([]int64, innerRows)
	payload := make([]int64, innerRows)
	for i := range inner {
		inner[i] = int64(i)
		payload[i] = int64(i) * 3
	}
	big := storage.NewTable("big")
	big.MustAddColumn(storage.NewIntColumn("k", outer))
	small := storage.NewTable("small")
	small.MustAddColumn(storage.NewIntColumn("k", inner))
	small.MustAddColumn(storage.NewIntColumn("v", payload))
	cat := storage.NewCatalog()
	cat.MustAdd(big)
	cat.MustAdd(small)
	return cat
}

// Table renders a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// tpchCatalog memoizes the TPC-H catalog per (sf, seed) for one process.
var tpchCache = map[string]*storage.Catalog{}

func tpchCatalog(sf float64, seed int64) *storage.Catalog {
	key := fmt.Sprintf("%v-%d", sf, seed)
	if c, ok := tpchCache[key]; ok {
		return c
	}
	c := tpch.Generate(tpch.Config{SF: sf, Seed: seed})
	tpchCache[key] = c
	return c
}
