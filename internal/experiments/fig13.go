package experiments

import (
	"fmt"
	"strings"
)

// Figure13 renders the data distribution of the skewed column used by
// Figure 12: random tuples in the first half, sequential clusters of
// identical tuples in the second half.
func Figure13(s Scale) (*Table, error) {
	const buckets = 20
	rows := s.MicroRows
	cat := makeSkewedColumn(rows, 50, s.Seed)
	col := cat.MustTable("skewed").MustColumn("v")

	t := &Table{
		Title:   "Figure 13: data distribution of the skewed column (matches per region)",
		Headers: []string{"region", "matches", "histogram"},
		Notes:   []string{"matching tuples (value 7) cluster in the second half of the column"},
	}
	per := rows / buckets
	maxCount := 0
	counts := make([]int, buckets)
	for b := 0; b < buckets; b++ {
		lo, hi := b*per, (b+1)*per
		n := 0
		for i := lo; i < hi; i++ {
			if col.At(i) == 7 {
				n++
			}
		}
		counts[b] = n
		if n > maxCount {
			maxCount = n
		}
	}
	for b, n := range counts {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", n*40/maxCount)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("[%2d%%,%2d%%)", b*100/buckets, (b+1)*100/buckets),
			fmt.Sprintf("%d", n), bar,
		})
	}
	return t, nil
}
