package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/heuristic"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/tpch"
	"repro/internal/vectorwise"
	"repro/internal/workload"
)

// Figure16 compares heuristic parallelization, adaptive parallelization and
// the Vectorwise comparator over the TPC-H subset, both in isolation and
// under a 32-client concurrent workload (§4.2.1–§4.2.4).
func Figure16(s Scale) (*Table, error) {
	cat := tpchCatalog(s.TPCHSF, s.Seed)
	queries := tpch.QueryNumbers()
	cores := sim.TwoSocket().LogicalCores()

	// Prepare the three plan sets.
	hpPlans := map[int]*plan.Plan{}
	apPlans := map[int]*plan.Plan{}
	vwPlans := map[int]*plan.Plan{}
	for _, qn := range queries {
		serial := tpch.MustQuery(qn)
		hp, err := heuristic.Parallelize(serial, cat, heuristic.Config{Partitions: cores})
		if err != nil {
			return nil, err
		}
		hpPlans[qn] = hp
		eng := newEngine(cat, sim.TwoSocket())
		rep, err := converge(eng, serial, s.convConfig())
		if err != nil {
			return nil, err
		}
		apPlans[qn] = rep.BestPlan
		vw, err := vectorwise.Plan(serial, cat, cores)
		if err != nil {
			return nil, err
		}
		vwPlans[qn] = vw
	}

	t := &Table{
		Title: "Figure 16: TPC-H isolated and concurrent execution (ms)",
		Headers: []string{"query", "HP iso", "AP iso", "VW iso",
			"HP conc", "AP conc", "VW conc"},
		Notes: []string{
			"paper: AP ≈ HP isolated (Q9/Q19 slightly worse), AP clearly best concurrent; VW worst concurrent (admission control)",
			fmt.Sprintf("concurrent = mean latency over %d clients x %d queries", s.Clients, s.Repeats),
		},
	}

	// Isolated executions.
	iso := func(p *plan.Plan, vw bool) (float64, error) {
		eng := newEngine(cat, sim.TwoSocket())
		opts := exec.JobOptions{}
		if vw {
			params := cost.Vectorwise()
			opts.CostParams = &params
		}
		job, err := eng.Submit(p, opts)
		if err != nil {
			return 0, err
		}
		eng.Run()
		if job.Err != nil {
			return 0, job.Err
		}
		return job.Profile.Makespan(), nil
	}

	// Concurrent executions: per engine, all clients replay the full mix;
	// report per-query mean latency.
	conc := func(plans map[int]*plan.Plan, vw bool) (map[int]float64, error) {
		eng := newEngine(cat, sim.TwoSocket())
		cfg := workload.ClientConfig{Repeats: s.Repeats, Seed: s.Seed}
		idx := map[int]int{}
		for i, qn := range queries {
			cfg.Plans = append(cfg.Plans, plans[qn])
			idx[i] = qn
		}
		if vw {
			params := cost.Vectorwise()
			cfg.CostParams = &params
			cfg.MaxCores = func(client, active int) int {
				return vectorwise.AdmissionMaxCores(client, active, cores)
			}
		}
		res, err := workload.RunConcurrent(eng, s.Clients, cfg)
		if err != nil {
			return nil, err
		}
		out := map[int]float64{}
		for pi, st := range res.PerPlan {
			out[idx[pi]] = st.Mean()
		}
		return out, nil
	}

	hpConc, err := conc(hpPlans, false)
	if err != nil {
		return nil, err
	}
	apConc, err := conc(apPlans, false)
	if err != nil {
		return nil, err
	}
	vwConc, err := conc(vwPlans, true)
	if err != nil {
		return nil, err
	}

	fmtConc := func(m map[int]float64, qn int) string {
		if v, ok := m[qn]; ok {
			return ms(v)
		}
		return "-" // query not drawn by the random mix at this seed
	}
	for _, qn := range queries {
		hpIso, err := iso(hpPlans[qn], false)
		if err != nil {
			return nil, err
		}
		apIso, err := iso(apPlans[qn], false)
		if err != nil {
			return nil, err
		}
		vwIso, err := iso(vwPlans[qn], true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Q%d", qn),
			ms(hpIso), ms(apIso), ms(vwIso),
			fmtConc(hpConc, qn), fmtConc(apConc, qn), fmtConc(vwConc, qn),
		})
	}
	return t, nil
}
