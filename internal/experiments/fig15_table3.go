package experiments

import (
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/sim"
)

// Figure15 traces adaptive join-plan execution against runs for three outer
// sizes probing an L3-resident inner (the paper's 3200/2000/640 MB outers
// against a 16 MB inner that fits the 20 MB shared L3).
func Figure15(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 15: adaptive join plan, execution time (ms) per run (L3-resident inner)",
		Headers: []string{"outer", "run0(serial)", "run2", "run4", "run8", "run16", "GME", "GMErun", "runs"},
		Notes:   []string{"paper: larger outers start higher; all converge near linear speedup"},
	}
	// Outer sizes in the paper's 5:3:1 ratio; inner sized to fit the scaled
	// 200 KB L3 share (20k tuples × 24 B hash ≈ 480 KB misses; use 6k ≈
	// 144 KB to fit).
	inner := 6_000
	for _, outer := range []struct {
		label string
		rows  int
	}{
		{"3200MB", s.MicroRows},
		{"2000MB", (s.MicroRows * 5) / 8},
		{"640MB", s.MicroRows / 5},
	} {
		cat := makeJoinCatalog(outer.rows, inner, s.Seed)
		cfg := sim.TwoSocket()
		cfg.Seed = s.Seed
		eng := newEngine(cat, cfg)
		rep, err := converge(eng, joinSumPlan(), s.convConfig())
		if err != nil {
			return nil, err
		}
		at := func(i int) string {
			if i < len(rep.History) {
				return ms(rep.History[i])
			}
			return "-"
		}
		t.Rows = append(t.Rows, []string{
			outer.label, at(0), at(2), at(4), at(8), at(16),
			ms(rep.GMENs), fmt.Sprintf("%d", rep.GMERun), fmt.Sprintf("%d", rep.TotalRuns),
		})
	}
	return t, nil
}

// Table3 compares join-plan speed-ups of adaptive and heuristic
// parallelization for a cache-resident and a spilling inner: the paper's
// 16 MB inner (fits the 20 MB L3) speeds up more than the 64 MB inner.
func Table3(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Table 3: join plan speedup vs serial (inner fits L3 vs spills)",
		Headers: []string{"outer", "AP 64MB-inner", "HP 64MB-inner", "AP 16MB-inner", "HP 16MB-inner"},
		Notes: []string{
			"paper: the L3-resident inner speeds up more (cheaper probes); speedup grows with outer size",
		},
	}
	// Scaled inners: "64 MB" spills the 200 KB L3 share (30k tuples × 24 B
	// = 720 KB), "16 MB" fits (6k × 24 B = 144 KB).
	inners := []struct {
		label string
		rows  int
	}{{"64MB", 30_000}, {"16MB", 6_000}}
	for _, outer := range []struct {
		label string
		rows  int
	}{
		{"3200MB", s.MicroRows},
		{"2000MB", (s.MicroRows * 5) / 8},
		{"640MB", s.MicroRows / 5},
	} {
		row := []string{outer.label}
		for _, inner := range inners {
			cat := makeJoinCatalog(outer.rows, inner.rows, s.Seed)
			q := joinSumPlan()

			engA := newEngine(cat, sim.TwoSocket())
			rep, err := converge(engA, q, s.convConfig())
			if err != nil {
				return nil, err
			}

			engH := newEngine(cat, sim.TwoSocket())
			_, serialProf, err := engH.Execute(q)
			if err != nil {
				return nil, err
			}
			hp, err := heuristic.Parallelize(q, cat, heuristic.Config{Partitions: 32})
			if err != nil {
				return nil, err
			}
			_, hpProf, err := engH.Execute(hp)
			if err != nil {
				return nil, err
			}
			row = append(row,
				fmt.Sprintf("%.1f", rep.Speedup()),
				fmt.Sprintf("%.1f", serialProf.Makespan()/hpProf.Makespan()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
