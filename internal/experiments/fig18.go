package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tpch"
)

// Figure18 measures the convergence algorithm's robustness: for each TPC-H
// query, three independent adaptive invocations, reporting (A) total
// convergence runs, (B) the run at which the global minimum occurs, (C) the
// global minimum time, and (D) GME run vs total runs. Robustness means
// minimal variation across invocations (§4.3).
func Figure18(s Scale) (*Table, error) {
	cat := tpchCatalog(s.TPCHSF, s.Seed)
	t := &Table{
		Title: "Figure 18: convergence robustness over three invocations",
		Headers: []string{"query",
			"runs(1)", "runs(2)", "runs(3)",
			"GMErun(1)", "GMErun(2)", "GMErun(3)",
			"GMEms(1)", "GMEms(2)", "GMEms(3)"},
		Notes: []string{
			"paper: minimal variation across invocations; most queries converge soon after the GME",
		},
	}
	for _, qn := range tpch.QueryNumbers() {
		row := []string{fmt.Sprintf("Q%d", qn)}
		var runs, gmeRuns []string
		var gmeTimes []string
		for inv := 0; inv < 3; inv++ {
			cfg := sim.TwoSocket()
			cfg.Noise = sim.DefaultNoise()
			cfg.Seed = s.Seed + int64(inv)*101
			eng := newEngine(cat, cfg)
			rep, err := converge(eng, tpch.MustQuery(qn), s.convConfig())
			if err != nil {
				return nil, err
			}
			runs = append(runs, fmt.Sprintf("%d", rep.TotalRuns))
			gmeRuns = append(gmeRuns, fmt.Sprintf("%d", rep.GMERun))
			gmeTimes = append(gmeTimes, ms(rep.GMENs))
		}
		row = append(row, runs...)
		row = append(row, gmeRuns...)
		row = append(row, gmeTimes...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
