package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/tpch"
)

// Table1 prints the simulated machine configurations standing in for the
// paper's hardware (Table 1), with the 1/100 byte-capacity scaling
// documented.
func Table1(_ Scale) (*Table, error) {
	t := &Table{
		Title: "Table 1: simulated system configurations (byte capacities scaled 1/100)",
		Headers: []string{"machine", "sockets", "phys cores", "threads",
			"L3/socket", "BW/socket", "clock"},
		Notes: []string{
			"stand-ins for Intel Xeon E5-2650 (2S/32T, 20MB L3, 256GB) and E5-4657Lv2 (4S/96T, 30MB L3, 1TB)",
		},
	}
	for _, cfg := range []sim.Config{sim.TwoSocket(), sim.FourSocket()} {
		t.Rows = append(t.Rows, []string{
			cfg.Name,
			fmt.Sprintf("%d", cfg.Sockets),
			fmt.Sprintf("%d", cfg.PhysicalCores()),
			fmt.Sprintf("%d", cfg.LogicalCores()),
			fmt.Sprintf("%dKB", cfg.L3PerSocket>>10),
			fmt.Sprintf("%.0fB/ns", cfg.BWPerSocket),
			fmt.Sprintf("%.1fx", cfg.SpeedFactor),
		})
	}
	return t, nil
}

// Table4 prints the TPC-H query classification used throughout §4.
func Table4(_ Scale) (*Table, error) {
	t := &Table{
		Title:   "Table 4: TPC-H query classification",
		Headers: []string{"class", "queries"},
	}
	byClass := map[string][]int{}
	for qn, cls := range tpch.Classification() {
		byClass[cls] = append(byClass[cls], qn)
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		qs := byClass[c]
		sort.Ints(qs)
		row := ""
		for i, q := range qs {
			if i > 0 {
				row += " "
			}
			row += fmt.Sprintf("Q%d", q)
		}
		t.Rows = append(t.Rows, []string{c, row})
	}
	return t, nil
}
