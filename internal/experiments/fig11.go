package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Figure11 traces the convergence algorithm on an adaptively parallelized
// join plan in a noisy environment: the execution-time series shows the
// steep early descent, local minima and plateaus, and occasional noise
// peaks that the algorithm forgives (§3.3).
func Figure11(s Scale) (*Table, error) {
	cat := makeJoinCatalog(s.MicroRows, 20_000, s.Seed)
	cfg := sim.TwoSocket()
	cfg.Noise = sim.NoiseConfig{Enabled: true, Jitter: 0.04, SpikeProb: 0.02, SpikeMin: 5, SpikeMax: 14}
	cfg.Seed = s.Seed
	eng := newEngine(cat, cfg)
	rep, err := converge(eng, joinSumPlan(), s.convConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 11: convergence scenarios for join operator parallelization",
		Headers: []string{"run", "time_ms", "trace"},
	}
	max := 0.0
	for _, v := range rep.History {
		if v > max {
			max = v
		}
	}
	outliers := map[int]bool{}
	for _, r := range rep.Outliers {
		outliers[r] = true
	}
	for i, v := range rep.History {
		bar := strings.Repeat("#", int(v/max*48))
		mark := ""
		if i == rep.GMERun {
			mark = " <-GME"
		}
		if outliers[i] {
			mark += " (peak)"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i), ms(v), bar + mark})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("converged after %d runs; GME %.3f ms at run %d; %d noise peaks forgiven",
			rep.TotalRuns, rep.GMENs/1e6, rep.GMERun, len(rep.Outliers)))
	return t, nil
}
