// Package workload drives the engine the way the paper's experiments do:
// concurrent clients replaying query mixes (§4.2.3), saturating background
// CPU load (Figure 1's "0% CPU core idleness"), degree-of-parallelism
// sweeps, and latency statistics.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Stats accumulates latency samples (virtual ns).
type Stats struct {
	samples []float64
}

// Add records a sample.
func (s *Stats) Add(v float64) { s.samples = append(s.samples, v) }

// N returns the sample count.
func (s *Stats) N() int { return len(s.samples) }

// Mean returns the average, or 0 for no samples.
func (s *Stats) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

func (s *Stats) sorted() []float64 {
	out := append([]float64(nil), s.samples...)
	sort.Float64s(out)
	return out
}

// Percentile returns the p-th percentile (0 < p ≤ 100).
func (s *Stats) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	ss := s.sorted()
	idx := int(p / 100 * float64(len(ss)-1))
	return ss[idx]
}

// Median returns the 50th percentile.
func (s *Stats) Median() float64 { return s.Percentile(50) }

// Min and Max return the extremes (0 for no samples).
func (s *Stats) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sorted()[0]
}

// Max returns the largest sample.
func (s *Stats) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	ss := s.sorted()
	return ss[len(ss)-1]
}

// SaturateCores submits width self-resubmitting compute tasks that keep the
// machine busy until the virtual deadline — the CPU-bound concurrent load of
// Figure 1. The tasks are compute-only (no bandwidth demand) so queries
// compete for cores, not memory.
func SaturateCores(m *sim.Machine, width int, taskNs, untilNs float64) {
	job := m.NewJob(width)
	var resubmit func()
	resubmit = func() {
		if m.Now() >= untilNs {
			return
		}
		m.Submit(&sim.Task{
			Label:  "bgload",
			Job:    job,
			BaseNs: taskNs,
			OnComplete: func(now float64, core int) {
				resubmit()
			},
		})
	}
	for i := 0; i < width; i++ {
		resubmit()
	}
}

// ClientConfig configures a concurrent replay.
type ClientConfig struct {
	// Plans is the query mix; each client picks uniformly at random.
	Plans []*plan.Plan
	// Repeats is how many queries each client runs.
	Repeats int
	// Seed drives the per-client mix selection.
	Seed int64
	// MaxCores, when non-nil, applies admission control per submission:
	// it receives the client index and the number of clients still active.
	MaxCores func(clientIdx, activeClients int) int
	// CostParams overrides the engine cost model (the Vectorwise
	// comparator); nil uses the engine default.
	CostParams *cost.Params
}

// QueryOutcome records one completed query during a concurrent run.
type QueryOutcome struct {
	Client    int
	PlanIndex int
	LatencyNs float64
}

// ConcurrentResult aggregates a concurrent replay.
type ConcurrentResult struct {
	Outcomes []QueryOutcome
	// PerPlan indexes latency stats by position in ClientConfig.Plans.
	PerPlan map[int]*Stats
	// Overall aggregates everything.
	Overall Stats
	// MakespanNs is the virtual time from first submission to last
	// completion.
	MakespanNs float64
}

// RunConcurrent replays the query mix with `clients` concurrent clients on
// eng's machine, each issuing its next query as soon as the previous one
// completes ("32 clients invoke queries repeatedly", §4.2.3).
func RunConcurrent(eng *exec.Engine, clients int, cfg ClientConfig) (*ConcurrentResult, error) {
	if len(cfg.Plans) == 0 {
		return nil, fmt.Errorf("workload: no plans")
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	res := &ConcurrentResult{PerPlan: map[int]*Stats{}}
	start := eng.Machine().Now()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xc11e27))
	active := clients

	var submitNext func(client, remaining int) error
	submitNext = func(client, remaining int) error {
		if remaining == 0 {
			active--
			return nil
		}
		pi := rng.Intn(len(cfg.Plans))
		opts := exec.JobOptions{CostParams: cfg.CostParams}
		if cfg.MaxCores != nil {
			opts.MaxCores = cfg.MaxCores(client, active)
		}
		job, err := eng.Submit(cfg.Plans[pi], opts)
		if err != nil {
			return err
		}
		var subErr error
		job.OnDone = func(j *exec.PlanJob) {
			if j.Err != nil {
				subErr = j.Err
				active--
				return
			}
			lat := j.Profile.Makespan()
			res.Outcomes = append(res.Outcomes, QueryOutcome{
				Client: client, PlanIndex: pi, LatencyNs: lat,
			})
			if res.PerPlan[pi] == nil {
				res.PerPlan[pi] = &Stats{}
			}
			res.PerPlan[pi].Add(lat)
			res.Overall.Add(lat)
			if err := submitNext(client, remaining-1); err != nil && subErr == nil {
				subErr = err
			}
		}
		_ = subErr
		return nil
	}
	for c := 0; c < clients; c++ {
		if err := submitNext(c, cfg.Repeats); err != nil {
			return nil, err
		}
	}
	eng.Machine().RunUntil(func() bool { return active == 0 })
	res.MakespanNs = eng.Machine().Now() - start
	want := clients * cfg.Repeats
	if res.Overall.N() != want {
		return nil, fmt.Errorf("workload: completed %d of %d queries", res.Overall.N(), want)
	}
	return res, nil
}
