package workload

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testMachine() sim.Config {
	return sim.Config{
		Name: "test", Sockets: 2, PhysCoresPerSocket: 4, SMT: 2, SpeedFactor: 1,
		L3PerSocket: 64 << 10, BWPerSocket: 1e9, SMTFactor: 0.55, NUMAFactor: 1.2,
	}
}

func testCat(n int) *storage.Catalog {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 997)
	}
	t := storage.NewTable("data")
	t.MustAddColumn(storage.NewIntColumn("v", vals))
	cat := storage.NewCatalog()
	cat.MustAdd(t)
	return cat
}

func scanPlan(lo, hi int64) *plan.Plan {
	b := plan.NewBuilder()
	v := b.Bind("data", "v")
	s := b.Select(v, algebra.Between(lo, hi))
	f := b.Fetch(s, v)
	sum := b.Aggr(algebra.AggrSum, f)
	b.Result(sum)
	return b.Plan()
}

func TestStats(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty stats not zero")
	}
	for _, v := range []float64{5, 1, 9, 3, 7} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 5 || s.Median() != 5 || s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("stats wrong: n=%d mean=%f med=%f min=%f max=%f",
			s.N(), s.Mean(), s.Median(), s.Min(), s.Max())
	}
	if s.Percentile(100) != 9 {
		t.Fatalf("p100 = %f", s.Percentile(100))
	}
}

func TestSaturateCoresKeepsMachineBusy(t *testing.T) {
	cat := testCat(10_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())

	// Baseline latency on an idle machine.
	idle, _, err := eng.Execute(scanPlan(0, 500))
	if err != nil {
		t.Fatal(err)
	}
	idleLat := idle != nil
	_ = idleLat
	idleMs := func() float64 {
		e := exec.NewEngine(cat, testMachine(), cost.Default())
		_, prof, err := e.Execute(scanPlan(0, 500))
		if err != nil {
			t.Fatal(err)
		}
		return prof.Makespan()
	}()

	// Saturated machine: same query must be slower.
	e2 := exec.NewEngine(cat, testMachine(), cost.Default())
	SaturateCores(e2.Machine(), testMachine().LogicalCores(), 50_000, 1e9)
	_, prof, err := e2.Execute(scanPlan(0, 500))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Makespan() <= idleMs {
		t.Fatalf("load had no effect: loaded %.0f vs idle %.0f", prof.Makespan(), idleMs)
	}
}

func TestSaturateCoresStopsAtDeadline(t *testing.T) {
	cat := testCat(100)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	SaturateCores(eng.Machine(), 4, 10_000, 200_000)
	eng.Machine().Run() // must terminate: load stops resubmitting at 200µs
	if now := eng.Machine().Now(); now < 200_000 || now > 400_000 {
		t.Fatalf("machine drained at %f", now)
	}
}

func TestRunConcurrentCompletesAllQueries(t *testing.T) {
	cat := testCat(50_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	res, err := RunConcurrent(eng, 8, ClientConfig{
		Plans:   []*plan.Plan{scanPlan(0, 300), scanPlan(300, 900)},
		Repeats: 5,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.N() != 40 {
		t.Fatalf("completed %d queries", res.Overall.N())
	}
	if res.MakespanNs <= 0 {
		t.Fatal("no makespan")
	}
	totalPerPlan := 0
	for _, s := range res.PerPlan {
		totalPerPlan += s.N()
	}
	if totalPerPlan != 40 {
		t.Fatalf("per-plan totals = %d", totalPerPlan)
	}
	if len(res.Outcomes) != 40 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
}

func TestRunConcurrentContentionSlowsQueries(t *testing.T) {
	cat := testCat(50_000)
	solo := func() float64 {
		eng := exec.NewEngine(cat, testMachine(), cost.Default())
		res, err := RunConcurrent(eng, 1, ClientConfig{
			Plans: []*plan.Plan{scanPlan(0, 300)}, Repeats: 3, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Overall.Mean()
	}()
	crowded := func() float64 {
		eng := exec.NewEngine(cat, testMachine(), cost.Default())
		res, err := RunConcurrent(eng, 16, ClientConfig{
			Plans: []*plan.Plan{scanPlan(0, 300)}, Repeats: 3, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Overall.Mean()
	}()
	if crowded <= solo {
		t.Fatalf("no contention: crowded %.0f vs solo %.0f", crowded, solo)
	}
}

func TestRunConcurrentAdmissionControl(t *testing.T) {
	cat := testCat(50_000)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	calls := 0
	res, err := RunConcurrent(eng, 4, ClientConfig{
		Plans:   []*plan.Plan{scanPlan(0, 500)},
		Repeats: 2,
		MaxCores: func(client, active int) int {
			calls++
			if client == 0 {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Fatalf("admission callback called %d times", calls)
	}
	if res.Overall.N() != 8 {
		t.Fatalf("completed %d", res.Overall.N())
	}
}

func TestRunConcurrentValidatesInput(t *testing.T) {
	cat := testCat(100)
	eng := exec.NewEngine(cat, testMachine(), cost.Default())
	if _, err := RunConcurrent(eng, 2, ClientConfig{}); err == nil {
		t.Fatal("empty plan list accepted")
	}
}
