package storage

// Alignment of dynamically partitioned oid ranges (paper §2.3, Figures 9/10).
//
// Tuple reconstruction fetches values from a target column view (RH/RT in the
// paper) using row ids produced elsewhere (LT). With fixed-size partitions
// the row ids are always a subset of the target's head oids (Figure 9A), but
// dynamic partitioning produces variable-sized partitions whose boundaries
// may over- or under-shoot the target view (Figures 9B–9F). The paper aligns
// the boundaries by trimming row ids that fall outside the target range, so
// that every lookup is a valid access with no repetition and no omission
// across sibling partitions.

// AlignScenario classifies how an oid range [lo,hi) relates to a target view
// [tlo,thi), mirroring the boundary cases of Figure 9.
type AlignScenario int

const (
	// AlignExact: boundaries coincide (Figure 9A, fixed-size partitions).
	AlignExact AlignScenario = iota
	// AlignInside: the oid range is strictly inside the target (9B).
	AlignInside
	// AlignOvershootLow: starts before the target's upper boundary (9C/9E).
	AlignOvershootLow
	// AlignOvershootHigh: extends beyond the target's lower boundary (9D).
	AlignOvershootHigh
	// AlignOvershootBoth: overshoots on both ends (9F).
	AlignOvershootBoth
	// AlignDisjoint: no overlap at all; alignment yields an empty range.
	AlignDisjoint
)

// Classify returns the alignment scenario for oid span [lo,hi) against a
// target view spanning oids [tlo,thi).
func Classify(lo, hi, tlo, thi int64) AlignScenario {
	switch {
	case lo == tlo && hi == thi:
		return AlignExact
	case hi <= tlo || lo >= thi:
		return AlignDisjoint
	case lo < tlo && hi > thi:
		return AlignOvershootBoth
	case lo < tlo:
		return AlignOvershootLow
	case hi > thi:
		return AlignOvershootHigh
	default:
		return AlignInside
	}
}

// AlignOids trims the sorted-or-unsorted oid list to those addressing the
// target view [tlo,thi), the "adjusting the lower boundary of LT by removing
// row-id=8" correction from Figure 10. It returns the kept oids (allocated
// only when trimming is needed) and the number dropped.
func AlignOids(oids []int64, tlo, thi int64) (kept []int64, dropped int) {
	for _, o := range oids {
		if o < tlo || o >= thi {
			dropped++
		}
	}
	if dropped == 0 {
		return oids, 0
	}
	kept = make([]int64, 0, len(oids)-dropped)
	for _, o := range oids {
		if o >= tlo && o < thi {
			kept = append(kept, o)
		}
	}
	return kept, dropped
}

// AlignRange clips oid span [lo,hi) to the target view span [tlo,thi).
func AlignRange(lo, hi, tlo, thi int64) (alo, ahi int64) {
	alo, ahi = lo, hi
	if alo < tlo {
		alo = tlo
	}
	if ahi > thi {
		ahi = thi
	}
	if ahi < alo {
		ahi = alo
	}
	return alo, ahi
}
