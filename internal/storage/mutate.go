package storage

import (
	"fmt"

	"repro/internal/vec"
)

// ColumnAppend carries the values appended to one column of a table. Exactly
// one of Ints or Strs must be set, matching the column's payload type.
type ColumnAppend struct {
	Ints []int64
	Strs []string
}

func (a ColumnAppend) rows() int {
	if a.Strs != nil {
		return len(a.Strs)
	}
	return len(a.Ints)
}

// AppendRows returns a new catalog in which table has the given rows appended.
//
// The mutation is copy-on-write: the receiver is never modified, untouched
// tables are shared between old and new catalog, and the mutated table gets
// freshly materialized base columns (dictionary-coded columns get a new
// dictionary — vec.Dict.Code mutates, so the old table's dictionary must not
// be shared with a column that grows). In-flight jobs holding the old catalog
// keep reading an immutable snapshot; swapping the new catalog in is the
// caller's concern (the serving layer does it under its shard locks).
//
// cols must name every column of the table exactly once, all with the same
// strictly positive number of appended rows and payload types matching the
// existing columns.
func (c *Catalog) AppendRows(table string, cols map[string]ColumnAppend) (*Catalog, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	if len(cols) != len(t.order) {
		return nil, fmt.Errorf("storage: append to %q must cover all %d columns, got %d", table, len(t.order), len(cols))
	}
	n := -1
	for _, name := range t.order {
		a, ok := cols[name]
		if !ok {
			return nil, fmt.Errorf("storage: append to %q missing column %q", table, name)
		}
		if a.Ints != nil && a.Strs != nil {
			return nil, fmt.Errorf("storage: append to %q column %q sets both int and string values", table, name)
		}
		if n < 0 {
			n = a.rows()
		} else if a.rows() != n {
			return nil, fmt.Errorf("storage: append to %q column %q has %d rows, want %d", table, name, a.rows(), n)
		}
		isStr := t.columns[name].Data().IsString()
		if isStr && a.Strs == nil {
			return nil, fmt.Errorf("storage: append to %q column %q is dictionary-coded, need string values", table, name)
		}
		if !isStr && a.Ints == nil {
			return nil, fmt.Errorf("storage: append to %q column %q is int64, need int values", table, name)
		}
	}
	if n <= 0 {
		return nil, fmt.Errorf("storage: append to %q must add at least one row", table)
	}

	nt := NewTable(table)
	for _, name := range t.order {
		old := t.columns[name]
		a := cols[name]
		var data *vec.Vector
		if old.Data().IsString() {
			// Re-code the full column through a fresh dictionary: the old
			// dictionary may be shared by views and snapshots, and Code
			// mutates.
			nd := vec.NewDict()
			codes := make([]int64, 0, old.Len()+n)
			oldDict := old.Dict()
			for _, code := range old.Values() {
				codes = append(codes, nd.Code(oldDict.Value(code)))
			}
			for _, s := range a.Strs {
				codes = append(codes, nd.Code(s))
			}
			data = vec.NewDictCoded(codes, nd)
		} else {
			vals := make([]int64, 0, old.Len()+n)
			vals = append(vals, old.Values()...)
			vals = append(vals, a.Ints...)
			data = vec.NewInt64(vals)
		}
		nt.MustAddColumn(NewColumn(name, 0, data))
	}
	return c.replaced(table, nt), nil
}

// DeleteTail returns a new catalog in which the last n rows of table are
// removed, with the same copy-on-write discipline as AppendRows. Deleting
// every row is rejected — the engine's partitioners assume non-empty anchor
// inputs.
func (c *Catalog) DeleteTail(table string, n int) (*Catalog, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("storage: delete from %q must remove at least one row", table)
	}
	if n >= t.rows {
		return nil, fmt.Errorf("storage: delete of %d rows from %q would empty the table (%d rows)", n, table, t.rows)
	}

	keep := t.rows - n
	nt := NewTable(table)
	for _, name := range t.order {
		old := t.columns[name]
		var data *vec.Vector
		if old.Data().IsString() {
			nd := vec.NewDict()
			codes := make([]int64, 0, keep)
			oldDict := old.Dict()
			for _, code := range old.Values()[:keep] {
				codes = append(codes, nd.Code(oldDict.Value(code)))
			}
			data = vec.NewDictCoded(codes, nd)
		} else {
			vals := make([]int64, keep)
			copy(vals, old.Values()[:keep])
			data = vec.NewInt64(vals)
		}
		nt.MustAddColumn(NewColumn(name, 0, data))
	}
	return c.replaced(table, nt), nil
}

// replaced returns a new catalog sharing every table of the receiver except
// name, which maps to nt.
func (c *Catalog) replaced(name string, nt *Table) *Catalog {
	out := NewCatalog()
	for tn, t := range c.tables {
		if tn == name {
			out.tables[tn] = nt
		} else {
			out.tables[tn] = t
		}
	}
	return out
}
