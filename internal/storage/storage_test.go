package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func intCol(name string, vals ...int64) *Column {
	return NewIntColumn(name, vals)
}

func TestColumnBasics(t *testing.T) {
	c := intCol("a", 10, 20, 30, 40)
	if c.Len() != 4 || c.Seq() != 0 || c.EndSeq() != 4 {
		t.Fatalf("basics wrong: len=%d seq=%d end=%d", c.Len(), c.Seq(), c.EndSeq())
	}
	if c.Bytes() != 32 {
		t.Fatalf("Bytes = %d", c.Bytes())
	}
	if c.Base() != c {
		t.Fatal("base column's Base() is not itself")
	}
	if c.ValueAtOid(2) != 30 {
		t.Fatalf("ValueAtOid(2) = %d", c.ValueAtOid(2))
	}
}

func TestViewOidArithmetic(t *testing.T) {
	c := intCol("a", 10, 20, 30, 40, 50)
	v := c.View(1, 4) // oids 1,2,3 → values 20,30,40
	if v.Seq() != 1 || v.EndSeq() != 4 || v.Len() != 3 {
		t.Fatalf("view span wrong: seq=%d end=%d len=%d", v.Seq(), v.EndSeq(), v.Len())
	}
	if v.Base() != c {
		t.Fatal("view Base() is not the base column")
	}
	if got := v.ValueAtOid(3); got != 40 {
		t.Fatalf("ValueAtOid(3) = %d, want 40", got)
	}
	if _, ok := v.OidToPos(0); ok {
		t.Fatal("oid 0 should be outside view [1,4)")
	}
	if _, ok := v.OidToPos(4); ok {
		t.Fatal("oid 4 should be outside view [1,4)")
	}
	// Nested views keep absolute oids aligned with the base (Figure 8).
	vv := v.View(1, 3) // oids 2,3
	if vv.Seq() != 2 || vv.ValueAtOid(2) != 30 {
		t.Fatalf("nested view misaligned: seq=%d", vv.Seq())
	}
	if vv.Base() != c {
		t.Fatal("nested view lost base")
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	c := intCol("a", 1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("View(1,5) did not panic")
		}
	}()
	c.View(1, 5)
}

func TestValueAtOidPanicsOutside(t *testing.T) {
	c := intCol("a", 1, 2, 3)
	v := c.View(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("ValueAtOid outside view did not panic")
		}
	}()
	v.ValueAtOid(0)
}

// Property: any binary-split partitioning of a column into views covers every
// base oid exactly once — the "no repetition, no omission" requirement of
// dynamic partitioning (§2.3).
func TestViewPartitioningCoversBaseExactlyOnce(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		size := int(n)%97 + 3
		vals := make([]int64, size)
		for i := range vals {
			vals[i] = int64(i * 7)
		}
		c := NewIntColumn("x", vals)
		rng := rand.New(rand.NewSource(seed))
		parts := []*Column{c}
		for step := 0; step < 6; step++ {
			i := rng.Intn(len(parts))
			p := parts[i]
			if p.Len() < 2 {
				continue
			}
			mid := p.Len() / 2
			left, right := p.View(0, mid), p.View(mid, p.Len())
			parts = append(parts[:i], append([]*Column{left, right}, parts[i+1:]...)...)
		}
		seen := make([]int, size)
		for _, p := range parts {
			for oid := p.Seq(); oid < p.EndSeq(); oid++ {
				if p.ValueAtOid(oid) != vals[oid] {
					return false
				}
				seen[oid]++
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHashIndexBuildAndCache(t *testing.T) {
	c := intCol("k", 5, 7, 5, 9)
	h1, built1 := c.Hash()
	if !built1 {
		t.Fatal("first Hash() did not build")
	}
	if got := h1.Lookup(5); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Lookup(5) = %v", got)
	}
	if got := h1.Lookup(42); len(got) != 0 {
		t.Fatalf("Lookup(42) = %v, want empty", got)
	}
	if h1.Tuples() != 4 {
		t.Fatalf("Tuples = %d", h1.Tuples())
	}
	h2, built2 := c.Hash()
	if built2 || h2 != h1 {
		t.Fatal("second Hash() did not hit the cache")
	}
	// A view over a different range builds its own index with absolute oids.
	v := c.View(2, 4)
	hv, builtv := v.Hash()
	if !builtv {
		t.Fatal("view Hash() should build for a new range")
	}
	if got := hv.Lookup(5); len(got) != 1 || got[0] != 2 {
		t.Fatalf("view Lookup(5) = %v, want [2]", got)
	}
	// Same range requested through the base is shared.
	hv2, builtv2 := c.View(2, 4).Hash()
	if builtv2 || hv2 != hv {
		t.Fatal("identical ranges did not share one hash build")
	}
	c.DropHashes()
	_, rebuilt := c.Hash()
	if !rebuilt {
		t.Fatal("DropHashes did not clear the cache")
	}
}

func TestTableAndCatalog(t *testing.T) {
	tb := NewTable("lineitem")
	tb.MustAddColumn(intCol("l_quantity", 1, 2, 3))
	if err := tb.AddColumn(intCol("l_quantity", 9, 9, 9)); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := tb.AddColumn(intCol("short", 1)); err == nil {
		t.Fatal("length-mismatched column accepted")
	}
	if err := tb.AddColumn(NewColumn("seqy", 3, vec.NewInt64([]int64{1, 2, 3}))); err == nil {
		t.Fatal("non-zero seq column accepted")
	}
	if tb.Rows() != 3 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if _, err := tb.Column("nope"); err == nil {
		t.Fatal("missing column lookup succeeded")
	}
	if got := tb.MustColumn("l_quantity").At(1); got != 2 {
		t.Fatalf("column value = %d", got)
	}
	names := tb.ColumnNames()
	if len(names) != 1 || names[0] != "l_quantity" {
		t.Fatalf("ColumnNames = %v", names)
	}

	cat := NewCatalog()
	cat.MustAdd(tb)
	if err := cat.Add(tb); err == nil {
		t.Fatal("duplicate table accepted")
	}
	small := NewTable("nation")
	small.MustAddColumn(intCol("n_key", 1))
	cat.MustAdd(small)
	if _, err := cat.Table("ghost"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	if cat.LargestTable().Name() != "lineitem" {
		t.Fatalf("LargestTable = %q", cat.LargestTable().Name())
	}
	tabs := cat.Tables()
	if len(tabs) != 2 || tabs[0] != "lineitem" || tabs[1] != "nation" {
		t.Fatalf("Tables = %v", tabs)
	}
}

func TestClassifyScenarios(t *testing.T) {
	cases := []struct {
		lo, hi, tlo, thi int64
		want             AlignScenario
	}{
		{0, 10, 0, 10, AlignExact},
		{2, 8, 0, 10, AlignInside},
		{0, 8, 2, 10, AlignOvershootLow},
		{2, 12, 0, 10, AlignOvershootHigh},
		{0, 12, 2, 10, AlignOvershootBoth},
		{0, 2, 2, 10, AlignDisjoint},
		{10, 12, 2, 10, AlignDisjoint},
	}
	for _, tc := range cases {
		if got := Classify(tc.lo, tc.hi, tc.tlo, tc.thi); got != tc.want {
			t.Errorf("Classify(%d,%d,%d,%d) = %v, want %v", tc.lo, tc.hi, tc.tlo, tc.thi, got, tc.want)
		}
	}
}

func TestAlignOids(t *testing.T) {
	// The Figure 10 example: LT holds row ids 2,4,5,7,8 while RH covers
	// oids [1,8); row id 8 must be removed.
	oids := []int64{2, 4, 5, 7, 8}
	kept, dropped := AlignOids(oids, 1, 8)
	if dropped != 1 || len(kept) != 4 || kept[3] != 7 {
		t.Fatalf("AlignOids = %v dropped=%d", kept, dropped)
	}
	// No trimming needed: same slice returned, zero allocations implied.
	kept2, dropped2 := AlignOids(kept, 0, 100)
	if dropped2 != 0 || &kept2[0] != &kept[0] {
		t.Fatal("AlignOids copied when no trimming was needed")
	}
}

// Property: aligning an arbitrary oid set against a partitioning of the
// target yields each in-range oid in exactly one partition (no repetition, no
// omission — the two failure modes §2.3 warns about).
func TestAlignOidsPartitionProperty(t *testing.T) {
	f := func(raw []uint16, cut uint16, n uint16) bool {
		size := int64(n)%200 + 10
		c := int64(cut) % size
		var oids []int64
		for _, r := range raw {
			oids = append(oids, int64(r)%(size+6)-3) // some outside [0,size)
		}
		left, dl := AlignOids(oids, 0, c)
		right, dr := AlignOids(oids, c, size)
		inRange := 0
		for _, o := range oids {
			if o >= 0 && o < size {
				inRange++
			}
		}
		if len(left)+len(right) != inRange {
			return false
		}
		_ = dl
		_ = dr
		for _, o := range left {
			if o < 0 || o >= c {
				return false
			}
		}
		for _, o := range right {
			if o < c || o >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignRange(t *testing.T) {
	if lo, hi := AlignRange(0, 12, 2, 10); lo != 2 || hi != 10 {
		t.Fatalf("AlignRange both = [%d,%d)", lo, hi)
	}
	if lo, hi := AlignRange(3, 5, 0, 10); lo != 3 || hi != 5 {
		t.Fatalf("AlignRange inside = [%d,%d)", lo, hi)
	}
	if lo, hi := AlignRange(12, 20, 2, 10); lo != hi {
		t.Fatalf("AlignRange disjoint = [%d,%d), want empty", lo, hi)
	}
}
