package storage

import (
	"testing"

	"repro/internal/vec"
)

func mutateFixture(t *testing.T) *Catalog {
	t.Helper()
	tab := NewTable("t")
	tab.MustAddColumn(NewIntColumn("a", []int64{1, 2, 3}))
	d := vec.NewDict()
	codes := []int64{d.Code("x"), d.Code("y"), d.Code("x")}
	tab.MustAddColumn(NewColumn("s", 0, vec.NewDictCoded(codes, d)))
	other := NewTable("u")
	other.MustAddColumn(NewIntColumn("b", []int64{7}))
	cat := NewCatalog()
	cat.MustAdd(tab)
	cat.MustAdd(other)
	return cat
}

func TestAppendRowsCopyOnWrite(t *testing.T) {
	cat := mutateFixture(t)
	oldTab := cat.MustTable("t")
	oldDict := oldTab.MustColumn("s").Dict()

	next, err := cat.AppendRows("t", map[string]ColumnAppend{
		"a": {Ints: []int64{4, 5}},
		"s": {Strs: []string{"z", "y"}},
	})
	if err != nil {
		t.Fatalf("AppendRows: %v", err)
	}

	// Old catalog untouched.
	if got := cat.MustTable("t").Rows(); got != 3 {
		t.Fatalf("old table mutated: %d rows", got)
	}
	if oldDict.Len() != 2 {
		t.Fatalf("old dictionary mutated: %d entries", oldDict.Len())
	}
	// New table has the appended data.
	nt := next.MustTable("t")
	if nt.Rows() != 5 {
		t.Fatalf("new table rows = %d, want 5", nt.Rows())
	}
	a := nt.MustColumn("a")
	for i, want := range []int64{1, 2, 3, 4, 5} {
		if a.At(i) != want {
			t.Fatalf("a[%d] = %d, want %d", i, a.At(i), want)
		}
	}
	s := nt.MustColumn("s")
	for i, want := range []string{"x", "y", "x", "z", "y"} {
		if got := s.Data().StringAt(i); got != want {
			t.Fatalf("s[%d] = %q, want %q", i, got, want)
		}
	}
	if s.Dict() == oldDict {
		t.Fatal("new string column shares the old dictionary")
	}
	// Untouched table shared, mutated table not.
	if next.MustTable("u") != cat.MustTable("u") {
		t.Fatal("untouched table not shared")
	}
	if nt == oldTab {
		t.Fatal("mutated table shared")
	}
}

func TestAppendRowsValidation(t *testing.T) {
	cat := mutateFixture(t)
	cases := []map[string]ColumnAppend{
		{"a": {Ints: []int64{1}}},                                       // missing column
		{"a": {Ints: []int64{1}}, "s": {Strs: []string{"p", "q"}}},      // ragged
		{"a": {Strs: []string{"p"}}, "s": {Strs: []string{"q"}}},        // type mismatch
		{"a": {Ints: []int64{1}}, "s": {Ints: []int64{0}}},              // type mismatch
		{"a": {}, "s": {}},                                              // empty
		{"a": {Ints: []int64{1}}, "s": {}, "extra": {Ints: []int64{1}}}, // unknown column
	}
	for i, cols := range cases {
		if _, err := cat.AppendRows("t", cols); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := cat.AppendRows("nope", nil); err == nil {
		t.Error("append to missing table: expected error")
	}
}

func TestDeleteTail(t *testing.T) {
	cat := mutateFixture(t)
	next, err := cat.DeleteTail("t", 1)
	if err != nil {
		t.Fatalf("DeleteTail: %v", err)
	}
	if got := cat.MustTable("t").Rows(); got != 3 {
		t.Fatalf("old table mutated: %d rows", got)
	}
	nt := next.MustTable("t")
	if nt.Rows() != 2 {
		t.Fatalf("new table rows = %d, want 2", nt.Rows())
	}
	if got := nt.MustColumn("s").Data().StringAt(1); got != "y" {
		t.Fatalf("s[1] = %q, want %q", got, "y")
	}
	if _, err := cat.DeleteTail("t", 3); err == nil {
		t.Error("emptying delete: expected error")
	}
	if _, err := cat.DeleteTail("t", 0); err == nil {
		t.Error("zero delete: expected error")
	}
}
