package storage

import (
	"fmt"
	"sort"
)

// Table is a named collection of equally long columns.
type Table struct {
	name    string
	rows    int
	columns map[string]*Column
	order   []string
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{name: name, columns: make(map[string]*Column)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rows returns the table cardinality.
func (t *Table) Rows() int { return t.rows }

// AddColumn attaches col to the table. All columns of a table must have the
// same length and head oids starting at zero.
func (t *Table) AddColumn(col *Column) error {
	if col.Seq() != 0 {
		return fmt.Errorf("storage: table %q column %q must have seq 0, got %d", t.name, col.Name(), col.Seq())
	}
	if len(t.order) > 0 && col.Len() != t.rows {
		return fmt.Errorf("storage: table %q column %q has %d rows, table has %d", t.name, col.Name(), col.Len(), t.rows)
	}
	if _, dup := t.columns[col.Name()]; dup {
		return fmt.Errorf("storage: table %q already has column %q", t.name, col.Name())
	}
	t.columns[col.Name()] = col
	t.order = append(t.order, col.Name())
	t.rows = col.Len()
	return nil
}

// MustAddColumn is AddColumn that panics on error; used by generators whose
// schemas are static.
func (t *Table) MustAddColumn(col *Column) {
	if err := t.AddColumn(col); err != nil {
		panic(err)
	}
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, error) {
	c, ok := t.columns[name]
	if !ok {
		return nil, fmt.Errorf("storage: table %q has no column %q", t.name, name)
	}
	return c, nil
}

// MustColumn is Column that panics on a missing column.
func (t *Table) MustColumn(name string) *Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// ColumnNames returns the column names in attachment order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Catalog maps table names to tables.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table.
func (c *Catalog) Add(t *Table) error {
	if _, dup := c.tables[t.Name()]; dup {
		return fmt.Errorf("storage: catalog already has table %q", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// MustAdd is Add that panics on error.
func (c *Catalog) MustAdd(t *Table) {
	if err := c.Add(t); err != nil {
		panic(err)
	}
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: catalog has no table %q", name)
	}
	return t, nil
}

// MustTable is Table that panics on a missing table.
func (c *Catalog) MustTable(name string) *Table {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Tables returns all table names sorted, for deterministic reporting.
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LargestTable returns the table with the most rows, the quantity MonetDB's
// heuristic parallelizer keys its partition count on (§4.2.1).
func (c *Catalog) LargestTable() *Table {
	var best *Table
	for _, name := range c.Tables() {
		t := c.tables[name]
		if best == nil || t.Rows() > best.Rows() {
			best = t
		}
	}
	return best
}
