// Package storage implements the column-store substrate the paper assumes:
// columns with virtual consecutive head oids (MonetDB's hseqbase), zero-copy
// range-partition views over base and intermediate columns, tables and a
// catalog, a shared hash-index cache (MonetDB caches hash indexes on BATs, so
// cloned join operators re-use a single build — §2.1), and the boundary
// alignment rules for dynamically partitioned tuple reconstruction (§2.3,
// Figures 9 and 10).
package storage

import (
	"fmt"
	"sync"

	"repro/internal/vec"
)

// Column is a BAT-like column: a virtual head of consecutive oids starting at
// Seq paired with a payload tail. Views created by View share the payload of
// their base column; Seq keeps oid arithmetic aligned with the base so that
// dynamically sized partitions stay "aligned on the base column" (Figure 8D).
type Column struct {
	name string
	seq  int64
	data *vec.Vector

	base *Column // base column of a view chain; nil for base columns

	mu     sync.Mutex
	hashes map[hashKey]*HashIndex // populated on base columns only
}

type hashKey struct {
	lo, hi int64
}

// NewColumn creates a base column with head oids [seq, seq+len).
func NewColumn(name string, seq int64, data *vec.Vector) *Column {
	return &Column{name: name, seq: seq, data: data}
}

// NewIntColumn is a convenience wrapper over NewColumn for int64 payloads
// with head oids starting at zero.
func NewIntColumn(name string, vals []int64) *Column {
	return NewColumn(name, 0, vec.NewInt64(vals))
}

// NewBuilderColumn creates a column over positions [lo, hi) of a caller-owned
// shared result buffer: the zero-copy exchange's partition clones publish
// their output as views over one builder instead of materializing private
// copies. The head starts at seq, so a clone writing buffer range [lo,hi) can
// stay oid-aligned with the conceptual full intermediate (§2.3).
func NewBuilderColumn(name string, seq int64, b *vec.Builder, lo, hi int) *Column {
	return NewColumn(name, seq, b.View(lo, hi))
}

// Name returns the column name (view names inherit the base name).
func (c *Column) Name() string { return c.name }

// Seq returns the first head oid.
func (c *Column) Seq() int64 { return c.seq }

// Len returns the number of tuples.
func (c *Column) Len() int { return c.data.Len() }

// Bytes returns the payload size in bytes.
func (c *Column) Bytes() int64 { return c.data.Bytes() }

// Data exposes the payload vector (read-only).
func (c *Column) Data() *vec.Vector { return c.data }

// Values exposes the raw payload values (read-only).
func (c *Column) Values() []int64 { return c.data.Values() }

// At returns the payload value at position i of this view (not an absolute
// oid; see ValueAtOid for oid-based access).
func (c *Column) At(i int) int64 { return c.data.At(i) }

// Dict returns the string dictionary for dictionary-coded columns, or nil.
func (c *Column) Dict() *vec.Dict { return c.data.Dict() }

// Base returns the base column of a view chain (itself for base columns).
func (c *Column) Base() *Column {
	if c.base != nil {
		return c.base
	}
	return c
}

// EndSeq returns one past the last head oid: the view covers oids
// [Seq, EndSeq).
func (c *Column) EndSeq() int64 { return c.seq + int64(c.data.Len()) }

// View returns a zero-copy range-partition slice over positions [lo, hi) of
// the receiver. The view's head oids continue the receiver's oid space
// (seq+lo ...), which is exactly the "read only slices on the base or the
// intermediate column" partitioning of §2.3: no data copy, boundary ranges
// only.
func (c *Column) View(lo, hi int) *Column {
	if lo < 0 || hi < lo || hi > c.Len() {
		panic(fmt.Sprintf("storage: view [%d,%d) out of range for column %q of length %d", lo, hi, c.name, c.Len()))
	}
	return &Column{
		name: c.name,
		seq:  c.seq + int64(lo),
		data: c.data.Slice(lo, hi),
		base: c.Base(),
	}
}

// OidToPos translates an absolute head oid into a position of this view, and
// reports whether the oid falls inside the view.
func (c *Column) OidToPos(oid int64) (int, bool) {
	pos := oid - c.seq
	if pos < 0 || pos >= int64(c.Len()) {
		return 0, false
	}
	return int(pos), true
}

// ValueAtOid returns the payload value addressed by absolute head oid.
func (c *Column) ValueAtOid(oid int64) int64 {
	pos, ok := c.OidToPos(oid)
	if !ok {
		panic(fmt.Sprintf("storage: oid %d outside view [%d,%d) of column %q", oid, c.seq, c.EndSeq(), c.name))
	}
	return c.data.At(pos)
}

// HashIndex is a value → head-oid multimap built over a column range. Builds
// are cached on the base column keyed by the covered oid range, so two cloned
// join operators probing the same inner share one build — the behaviour the
// paper relies on when only the outer join input is partitioned (§2.1).
type HashIndex struct {
	index map[int64][]int64
	// tuples counts entries, exposed for cost accounting.
	tuples int64
}

// Lookup returns the head oids whose value equals v. The returned slice must
// be treated as read-only.
func (h *HashIndex) Lookup(v int64) []int64 { return h.index[v] }

// Tuples reports how many tuples the index covers.
func (h *HashIndex) Tuples() int64 { return h.tuples }

// Hash returns the hash index over the receiver's full range, building it on
// first use. The second return value reports whether this call performed the
// build (true) or hit the cache (false); the cost model charges the build
// only when it actually happened.
func (c *Column) Hash() (*HashIndex, bool) {
	base := c.Base()
	key := hashKey{lo: c.seq, hi: c.EndSeq()}

	base.mu.Lock()
	defer base.mu.Unlock()
	if base.hashes == nil {
		base.hashes = make(map[hashKey]*HashIndex)
	}
	if h, ok := base.hashes[key]; ok {
		return h, false
	}
	h := &HashIndex{index: make(map[int64][]int64, c.Len()), tuples: int64(c.Len())}
	vals := c.data.Values()
	for i, v := range vals {
		h.index[v] = append(h.index[v], c.seq+int64(i))
	}
	base.hashes[key] = h
	return h, true
}

// DropHashes discards every cached hash index on the receiver's base column.
// Used by tests and by benchmarks that want to charge builds again.
func (c *Column) DropHashes() {
	base := c.Base()
	base.mu.Lock()
	defer base.mu.Unlock()
	base.hashes = nil
}
