package apq

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/heuristic"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/vectorwise"
	"repro/internal/worksteal"
)

// MutationConfig tunes adaptive plan mutation (§2 of the paper).
type MutationConfig = core.MutationConfig

// ConvergenceConfig tunes the convergence algorithm (§3 of the paper).
type ConvergenceConfig = core.ConvergenceConfig

// ConvergenceReport summarizes a converged adaptation (Figure 18
// quantities: total runs, global-minimum run, global-minimum time).
type ConvergenceReport = core.Report

// Attempt is one adaptive run's record.
type Attempt = core.Attempt

// DefaultMutationConfig returns the mutation tuning (binary splits;
// exchange-union threshold 33 — see core.DefaultMutationConfig for why this
// differs from the paper's 15 MAL parameters).
func DefaultMutationConfig() MutationConfig { return core.DefaultMutationConfig() }

// DefaultConvergenceConfig mirrors the paper's calibration (ExtraRuns = 8;
// GME threshold 2%, see core.ConvergenceConfig) for a machine with the
// given core count.
func DefaultConvergenceConfig(cores int) ConvergenceConfig {
	return core.DefaultConvergenceConfig(cores)
}

// AdaptiveSession is one adaptive-parallelization instance for a cached
// query: each Step executes the current plan, profiles it, and morphs the
// most expensive operator into a parallel version, until the convergence
// algorithm halts.
type AdaptiveSession struct {
	inner *core.Session
}

// SessionOption configures an AdaptiveSession.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	mut  MutationConfig
	conv ConvergenceConfig
	// verify re-checks every run's results against the serial run.
	verify bool
}

// WithMutationConfig overrides mutation tuning.
func WithMutationConfig(m MutationConfig) SessionOption {
	return func(c *sessionConfig) { c.mut = m }
}

// WithConvergenceConfig overrides convergence tuning.
func WithConvergenceConfig(cc ConvergenceConfig) SessionOption {
	return func(c *sessionConfig) { c.conv = cc }
}

// WithResultVerification makes every adaptive run assert result equality
// with the serial plan — the mutation-correctness invariant.
func WithResultVerification() SessionOption {
	return func(c *sessionConfig) { c.verify = true }
}

// NewAdaptiveSession starts an adaptation of q on the engine. Convergence
// defaults to the machine's logical core count.
func (e *Engine) NewAdaptiveSession(q *Query, opts ...SessionOption) *AdaptiveSession {
	cfg := sessionConfig{
		mut:  DefaultMutationConfig(),
		conv: DefaultConvergenceConfig(e.Machine().LogicalCores()),
	}
	for _, o := range opts {
		o(&cfg)
	}
	s := core.NewSession(e.inner, q.p, cfg.mut, cfg.conv)
	s.VerifyResults = cfg.verify
	return &AdaptiveSession{inner: s}
}

// Step runs one adaptive invocation; it reports false once converged.
func (s *AdaptiveSession) Step() (bool, error) { return s.inner.Step() }

// Converge drives the session until the convergence algorithm halts.
func (s *AdaptiveSession) Converge() (*ConvergenceReport, error) { return s.inner.Converge() }

// Report snapshots the adaptation outcome so far.
func (s *AdaptiveSession) Report() *ConvergenceReport { return s.inner.Report() }

// Current returns the plan the next Step would execute.
func (s *AdaptiveSession) Current() *Query { return &Query{p: s.inner.Current()} }

// Done reports whether the session has converged.
func (s *AdaptiveSession) Done() bool { return s.inner.Done() }

// Attempts returns the per-run records so far.
func (s *AdaptiveSession) Attempts() []Attempt { return s.inner.Attempts() }

// BestQuery returns the global-minimum-execution plan found so far.
func (s *AdaptiveSession) BestQuery() *Query { return &Query{p: s.inner.Report().BestPlan} }

// HeuristicPlan statically parallelizes q with the MonetDB-style heuristic
// (partitions = the machine's logical cores when k is 0).
func (e *Engine) HeuristicPlan(q *Query, k int) (*Query, error) {
	if k == 0 {
		k = e.Machine().LogicalCores()
	}
	p, err := heuristic.Parallelize(q.p, e.inner.Catalog(), heuristic.Config{Partitions: k})
	if err != nil {
		return nil, err
	}
	return &Query{p: p}, nil
}

// WorkStealingPlan statically over-partitions q (128 partitions by default)
// for work-stealing-style execution (Figure 12's second configuration).
func (e *Engine) WorkStealingPlan(q *Query, partitions int) (*Query, error) {
	p, err := worksteal.Plan(q.p, e.inner.Catalog(), partitions)
	if err != nil {
		return nil, err
	}
	return &Query{p: p}, nil
}

// VectorwisePlan builds the simulated comparator's static exchange plan;
// execute it with ExecuteVectorwise so its cost calibration applies.
func (e *Engine) VectorwisePlan(q *Query) (*Query, error) {
	p, err := vectorwise.Plan(q.p, e.inner.Catalog(), e.Machine().LogicalCores())
	if err != nil {
		return nil, err
	}
	return &Query{p: p}, nil
}

// ExecuteVectorwise runs q under the Vectorwise cost calibration with an
// optional core budget (0 = unlimited) from the admission-control scheme.
func (e *Engine) ExecuteVectorwise(q *Query, maxCores int) (*Result, error) {
	params := vectorwise.Params()
	job, err := e.inner.Submit(q.p, execJobOptions(maxCores, &params))
	if err != nil {
		return nil, err
	}
	e.inner.Machine().RunUntil(func() bool { return job.Done })
	if job.Err != nil {
		return nil, job.Err
	}
	return &Result{Values: job.Results(), Profile: job.Profile}, nil
}

// VectorwiseAdmissionMaxCores exposes the comparator's admission-control
// policy (§4.2.4).
func VectorwiseAdmissionMaxCores(clientIndex, activeClients, cores int) int {
	return vectorwise.AdmissionMaxCores(clientIndex, activeClients, cores)
}

// AdaptiveCache is the plan-administration component of the paper's §2
// workflow: it keeps one adaptation per query-template key, advances it on
// every invocation (adaptation happens on the production query stream), and
// serves the converged global-minimum plan afterwards. It is the library
// face of the same plan-session cache the apqd daemon serves from.
type AdaptiveCache struct {
	inner *plancache.Cache
}

// NewAdaptiveCache creates a cache on the engine with default tuning.
func (e *Engine) NewAdaptiveCache() *AdaptiveCache {
	return &AdaptiveCache{inner: plancache.New(e.inner, plancache.Config{
		Mutation:    DefaultMutationConfig(),
		Convergence: DefaultConvergenceConfig(e.Machine().LogicalCores()),
	})}
}

// Execute serves one invocation of the template identified by key; builder
// is called once, on the first invocation. The boolean reports whether the
// template has converged.
//
// Execute drives the engine's single-threaded virtual-time machine; callers
// must not invoke it from multiple goroutines (the apqd server serializes
// it behind a run-loop).
func (c *AdaptiveCache) Execute(key string, builder func() *Query) (*Result, bool, error) {
	r, err := c.inner.Invoke(key, key,
		func() (*plan.Plan, error) { return builder().p, nil }, exec.JobOptions{})
	if err != nil {
		return nil, false, err
	}
	return &Result{Values: r.Values, Profile: r.Profile}, r.Invocation.Converged, nil
}

// Report returns the adaptation report for key (nil when unknown).
func (c *AdaptiveCache) Report(key string) *ConvergenceReport {
	e := c.inner.GetFingerprint(key)
	if e == nil {
		return nil
	}
	return e.Session.Report()
}

// Converged reports whether key's adaptation has finished.
func (c *AdaptiveCache) Converged(key string) bool {
	e := c.inner.GetFingerprint(key)
	return e != nil && e.Session.Done()
}

// Evict drops key's adaptation state.
func (c *AdaptiveCache) Evict(key string) { c.inner.Evict(key) }

// Serial returns a deep copy of q — useful as an immutable baseline in
// custom experiments (adaptive sessions never modify their input plan, but
// a private copy makes that explicit).
func Serial(q *Query) *Query { return &Query{p: q.p.Clone()} }

// MaxDOP reports the query plan's degree of parallelism.
func (q *Query) MaxDOP() int { return q.p.MaxDOP() }

func execJobOptions(maxCores int, params *cost.Params) exec.JobOptions {
	return exec.JobOptions{MaxCores: maxCores, CostParams: params}
}
