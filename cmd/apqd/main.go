// Command apqd is the adaptive-parallelization query-service daemon: it
// loads a benchmark database onto a pool of simulated multi-core engine
// shards and serves queries over HTTP/JSON, keeping adaptive state alive
// between requests. Repeated submissions of the same query keep stepping
// its convergence algorithm (each request is one adaptive run), so a cached
// query's latency drops request-over-request until the global-minimum plan
// is found. Queries are pinned to shards by fingerprint hash, so distinct
// queries execute concurrently on distinct host cores.
//
// Endpoints:
//
//	POST /query                 {"query":6} | {"query":6,"mode":"serial"} |
//	                            {"select_sum":{"table":"lineitem","column":"l_quantity","lo":10,"hi":500}} |
//	                            {"tenant":"acme","query":6}  (or the X-APQ-Tenant header)
//	GET  /sessions[?tenant=]    live plan-cache sessions (all shards; optionally one tenant's)
//	GET  /sessions/{id}/trace   per-run convergence trace (Figure 18)
//	GET  /stats                 server, cache, admission, lifecycle, and per-tenant counters per shard
//	GET  /healthz               liveness
//	POST /admin/append          append rows to a tenant table (bumps the dataset epoch,
//	                            reopens the tenant's converged sessions warm)
//	POST /admin/truncate        delete a tenant table's tail rows (same epoch semantics)
//	POST /admin/tenants         add a tenant at runtime: {"name":"acme","sf":0.5,"seed":7}
//	DELETE /admin/tenants?name= drain and remove a tenant with zero downtime
//	GET|POST|DELETE /admin/peers  federation membership (only with -node): list, join {"name":"b","url":"http://..."}, leave ?name=
//	POST /cluster/replicate     peer-to-peer converged-plan intake (only with -node)
//	GET  /debug/pprof/          host-side profiling (only with -pprof)
//
// Usage:
//
//	go run ./cmd/apqd -addr :8080 -bench tpch -sf 1 -machine 2s -shards 4
//	go run ./cmd/apqd -tenant acme=tpch:0.5:7 -tenant globex=tpcds:1:9   # extra tenant datasets, one shard pool
//	go run ./cmd/apqd -store plans.apqs      # persist converged plans; warm-restart from them next start
//	go run ./cmd/apqd -store plans.apqs -export-plans plans.apqx   # export converged plans, then exit
//	go run ./cmd/apqd -store other.apqs -import-plans plans.apqx   # import an export file, then exit
//	go run ./cmd/apqd -staleness -fault core-loss@5e6:socket=0:count=8   # chaos: scheduled core loss + re-convergence
//	go run ./cmd/apqd -request-timeout 2s -max-shard-queue 64 -breaker-failures 5   # overload hardening
//	go run ./cmd/apqd -addr :8080 -node a -peer b=http://host2:8080   # two-node federation (run the mirror on host2)
//	go run ./cmd/apqd -selfbench             # shard-sweep serving benchmark, JSON to stdout
//	go run ./cmd/apqd -simbench              # event-core benchmark (optimized vs seed), JSON to stdout
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests —
// including admin mutations and tenant lifecycle operations, which register
// with the same in-flight tracker as queries — drain before the engine
// shards are retired, and the convergence store's write-behind queue is
// flushed and the store closed before the process exits — on every exit
// path, including a failed listener shutdown. That ordering matters for
// mutations: an /admin/append racing shutdown either completes its epoch
// bump before the store flush or is rejected with 503, never half-applied.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	apq "repro"
	"repro/internal/sim"
	"repro/internal/store"
)

// tenantFlags collects repeatable -tenant flags: name=bench:sf:seed.
type tenantFlags []apq.TenantConfig

func (t *tenantFlags) String() string {
	parts := make([]string, len(*t))
	for i, tc := range *t {
		parts[i] = fmt.Sprintf("%s=%s:%g:%d", tc.Name, tc.Benchmark, tc.SF, tc.Seed)
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(v string) error {
	// Every error names the flag and quotes the whole offending value: a
	// repeatable flag's failure must say which -tenant of several broke.
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("bad -tenant value %q: want name=bench:sf:seed", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad -tenant value %q: want name=bench:sf:seed", v)
	}
	sf, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad -tenant value %q: scale factor %q does not parse: %v", v, parts[1], err)
	}
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return fmt.Errorf("bad -tenant value %q: seed %q does not parse: %v", v, parts[2], err)
	}
	*t = append(*t, apq.TenantConfig{Name: name, Benchmark: parts[0], SF: sf, Seed: seed})
	return nil
}

// faultFlags collects repeatable -fault flags:
// kind@ns[:socket=N][:count=N][:factor=F][:dur=ns] with kind one of
// core-loss, throttle, interference.
type faultFlags apq.FaultPlan

func (f *faultFlags) String() string {
	parts := make([]string, len(*f))
	for i, ev := range *f {
		parts[i] = fmt.Sprintf("%s@%g", ev.Kind, ev.AtNs)
	}
	return strings.Join(parts, ",")
}

func (f *faultFlags) Set(v string) error {
	kindStr, rest, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("bad -fault value %q: want kind@ns[:opt=val...]", v)
	}
	var ev apq.FaultEvent
	switch kindStr {
	case "core-loss":
		ev.Kind = apq.FaultCoreLoss
	case "throttle":
		ev.Kind = apq.FaultSocketThrottle
	case "interference":
		ev.Kind = apq.FaultInterference
	default:
		return fmt.Errorf("bad -fault value %q: unknown fault kind %q (want core-loss, throttle, or interference)", v, kindStr)
	}
	parts := strings.Split(rest, ":")
	at, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return fmt.Errorf("bad -fault value %q: virtual time %q does not parse: %v", v, parts[0], err)
	}
	ev.AtNs = at
	for _, opt := range parts[1:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return fmt.Errorf("bad -fault value %q: want opt=val, got %q", v, opt)
		}
		switch key {
		case "socket":
			if ev.Socket, err = strconv.Atoi(val); err != nil {
				return fmt.Errorf("bad -fault value %q: socket %q does not parse: %v", v, val, err)
			}
		case "count":
			if ev.Count, err = strconv.Atoi(val); err != nil {
				return fmt.Errorf("bad -fault value %q: count %q does not parse: %v", v, val, err)
			}
		case "factor":
			if ev.Factor, err = strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("bad -fault value %q: factor %q does not parse: %v", v, val, err)
			}
		case "dur":
			if ev.DurationNs, err = strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("bad -fault value %q: duration %q does not parse: %v", v, val, err)
			}
		default:
			return fmt.Errorf("bad -fault value %q: unknown option %q (want socket, count, factor, or dur)", v, key)
		}
	}
	*f = append(*f, ev)
	return nil
}

// peerFlags collects repeatable -peer flags: name=http://host:port.
type peerFlags []apq.ClusterPeer

func (p *peerFlags) String() string {
	parts := make([]string, len(*p))
	for i, pr := range *p {
		parts[i] = pr.Name + "=" + pr.URL
	}
	return strings.Join(parts, ",")
}

func (p *peerFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("bad -peer value %q: want name=http://host:port", v)
	}
	if !strings.Contains(url, "://") {
		return fmt.Errorf("bad -peer value %q: url %q has no scheme (want name=http://host:port)", v, url)
	}
	for _, pr := range *p {
		if pr.Name == name {
			return fmt.Errorf("bad -peer value %q: peer name %q given twice", v, name)
		}
	}
	*p = append(*p, apq.ClusterPeer{Name: name, URL: url})
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	bench := flag.String("bench", "tpch", "benchmark database to load: tpch or tpcds")
	sf := flag.Float64("sf", 1, "scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	machine := flag.String("machine", "2s", "machine config: 2s (2-socket/32HT), 4s (4-socket/96HT), 2s-asym (socket 1 at 0.7×), or 4s-asym (stepped 1.0/0.9/0.75/0.6× clocks)")
	shards := flag.Int("shards", 0, "engine shard-pool width (0 = derive from GOMAXPROCS)")
	admission := flag.Bool("admission", true, "apply Vectorwise-style admission control to concurrent clients of a shard")
	cacheSize := flag.Int("cache", 0, "max live plan-cache sessions per shard (0 = unlimited)")
	storePath := flag.String("store", "", "persistent convergence store path (created if missing): converged plans are persisted as they converge and rehydrated on restart")
	exportPlans := flag.String("export-plans", "", "export the -store file's records to this self-describing file and exit (no database is loaded)")
	importPlans := flag.String("import-plans", "", "import an export file's records into -store and exit (no database is loaded)")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "serve an extra tenant dataset over the same shard pool: name=bench:sf:seed (repeatable)")
	tenantSessions := flag.Int("tenant-sessions", 0, "per-tenant cached-session quota per shard (0 = unlimited)")
	tenantInflight := flag.Int("tenant-inflight", 0, "per-tenant in-flight request quota (0 = unlimited)")
	var faults faultFlags
	flag.Var(&faults, "fault", "schedule a machine fault on every shard: kind@ns[:socket=N][:count=N][:factor=F][:dur=ns] with kind core-loss, throttle, or interference (repeatable)")
	node := flag.String("node", "", "this daemon's federation node name; with -peer, /query routes across the cluster's consistent-hash ring")
	var peers peerFlags
	flag.Var(&peers, "peer", "federate with a remote daemon: name=http://host:port (repeatable; requires -node; all nodes must agree on names)")
	staleness := flag.Bool("staleness", false, "arm serving-time staleness detection: converged queries whose latency drifts out of band reopen convergence and re-adapt")
	drift := flag.Bool("drift", false, "arm workload-drift detection: converged queries whose serve latency no longer matches the query mix they converged under reopen sized to their observed budget")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline including the wait for the shard (0 = none); expired requests get 503")
	maxShardQueue := flag.Int("max-shard-queue", 0, "bound on each shard's waiting line (0 = unbounded); excess requests are shed with 503 + Retry-After")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failed/slow requests that trip a shard's health breaker into degraded mode (0 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "how long a tripped shard serves degraded before probing at full fidelity")
	slowFactor := flag.Float64("slow-factor", 0, "breaker slowness bound: an adaptive request slower than this multiple of its serial baseline counts as a failure (0 = errors only)")
	noise := flag.Bool("noise", false, "enable the OS-noise model")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	selfbench := flag.Bool("selfbench", false, "run the shard-sweep serving benchmark and print JSON (no listener)")
	benchN := flag.Int("selfbench-n", 400, "measured requests per phase for -selfbench")
	benchQueries := flag.Int("selfbench-queries", 8, "distinct queries in the -selfbench workload")
	benchPhase := flag.String("selfbench-phase", "all", "which -selfbench phases to run: all, drift (drift probe only), federation (two-node failover probe only), or zipf (coalescing probe only) — the single-phase modes are the CI smoke targets")
	simbench := flag.Bool("simbench", false, "run the event-core benchmark (optimized vs seed core) and print JSON")
	simbenchRounds := flag.Int("simbench-rounds", 5, "repetitions per scenario for -simbench (min is reported)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	if *simbench {
		if err := runSimbench(*simbenchRounds); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *exportPlans != "" || *importPlans != "" {
		if err := runPlanTransfer(*storePath, *exportPlans, *importPlans); err != nil {
			log.Fatal(err)
		}
		return
	}

	var m apq.Machine
	switch *machine {
	case "2s":
		m = apq.TwoSocketMachine()
	case "4s":
		m = apq.FourSocketMachine()
	case "2s-asym":
		m = apq.TwoSocketAsymMachine()
	case "4s-asym":
		m = apq.FourSocketAsymMachine()
	default:
		log.Fatalf("unknown machine %q (want 2s, 4s, 2s-asym, or 4s-asym)", *machine)
	}

	var db *apq.DB
	switch *bench {
	case "tpch":
		db = apq.LoadTPCH(*sf, *seed)
	case "tpcds":
		db = apq.LoadTPCDS(*sf, *seed)
	default:
		log.Fatalf("unknown benchmark %q (want tpch or tpcds)", *bench)
	}

	for i := range tenants {
		tenants[i].MaxSessions = *tenantSessions
		tenants[i].MaxInFlight = *tenantInflight
	}
	cfg := apq.ServerConfig{
		DB:              db,
		Machine:         m,
		DBIdentity:      apq.DBIdentity(*bench, *sf, *seed),
		Benchmark:       *bench,
		Admission:       *admission,
		CacheSize:       *cacheSize,
		Shards:          *shards,
		Tenants:         tenants,
		StorePath:       *storePath,
		Faults:          apq.FaultPlan(faults),
		RequestTimeout:  *requestTimeout,
		MaxShardQueue:   *maxShardQueue,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		SlowFactor:      *slowFactor,
	}
	if *staleness {
		cfg.Staleness = apq.DefaultStaleness()
	}
	if *drift {
		cfg.Drift = apq.DefaultDrift()
	}
	if len(peers) > 0 && *node == "" {
		log.Fatal("apqd: -peer requires -node (this daemon's own federation name)")
	}
	if *node != "" {
		cfg.Cluster = &apq.ClusterConfig{Self: *node, Peers: peers}
	}
	if *noise {
		cfg.EngineOptions = append(cfg.EngineOptions, apq.WithNoise(apq.DefaultNoise()), apq.WithSeed(*seed))
	}

	if *selfbench {
		if err := runSelfbench(cfg, *sf, *seed, *benchQueries, *benchN, *benchPhase); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s, err := apq.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Close is idempotent; the defer backstops panics while the explicit
	// closes below guarantee the store is flushed before log.Fatal exits.
	defer s.Close()
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	if *pprofOn {
		// Host-side hotspots (the event core, the interpreter, JSON) are
		// inspectable in production: go tool pprof host:8080/debug/pprof/profile
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	storeNote := ""
	if *storePath != "" {
		storeNote = fmt.Sprintf(", store %s", *storePath)
	}
	if len(faults) > 0 {
		storeNote += fmt.Sprintf(", %d scheduled faults", len(faults))
	}
	if *staleness {
		storeNote += ", staleness armed"
	}
	if *drift {
		storeNote += ", drift armed"
	}
	if *node != "" {
		storeNote += fmt.Sprintf(", federation node %q (%d peers)", *node, len(peers))
	}
	log.Printf("apqd: serving %s sf=%g on %s (machine %s, %d shards, %d tenants, admission %v, pprof %v%s)",
		*bench, *sf, *addr, *machine, s.Shards(), 1+len(tenants), *admission, *pprofOn, storeNote)
	// Same keep-alive tuning as apq.Serve: retain idle client connections
	// (steady clients skip TCP setup) but bound header reads.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := hs.Shutdown(shctx)
		cancel()
		// Flush the write-behind persistence queue and close the store
		// BEFORE any fatal exit: a log.Fatal here would skip the deferred
		// Close and lose converged plans persisted but not yet synced.
		s.Close()
		if err != nil {
			log.Fatalf("apqd: shutdown: %v", err)
		}
	case err := <-errc:
		s.Close()
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}
	log.Print("apqd: shut down")
}

// runPlanTransfer handles -export-plans / -import-plans: both operate
// directly on the -store file — no database is generated and no server
// starts — so plans can be moved between hosts without warming anything.
func runPlanTransfer(storePath, exportPath, importPath string) error {
	if storePath == "" {
		return errors.New("apqd: -export-plans and -import-plans require -store")
	}
	if exportPath != "" && importPath != "" {
		return errors.New("apqd: -export-plans and -import-plans are mutually exclusive")
	}
	st, err := store.Open(storePath)
	if err != nil {
		return err
	}
	defer st.Close()
	if exportPath != "" {
		n, err := st.Export(exportPath)
		if err != nil {
			return err
		}
		log.Printf("apqd: exported %d plan records from %s to %s", n, storePath, exportPath)
		return nil
	}
	n, err := st.Import(importPath)
	if err != nil {
		return err
	}
	log.Printf("apqd: imported %d plan records from %s into %s", n, importPath, storePath)
	return st.Close()
}

// benchPhase is one measured serving regime.
type benchPhase struct {
	Requests      int     `json:"requests"`
	WallMs        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	VirtualMeanNs float64 `json:"virtual_mean_ns"`
	// AllocsPerRequest / AllocKBPerRequest are process-wide heap deltas over
	// the phase divided by requests served — the hot-path allocation budget
	// the zero-copy exchange targets (ISSUE 3 acceptance metric).
	AllocsPerRequest  float64 `json:"allocs_per_request"`
	AllocKBPerRequest float64 `json:"alloc_kb_per_request"`
}

// shardPoint is one shard-count sample of the scaling sweep.
type shardPoint struct {
	Shards int `json:"shards"`
	// WarmupRequests is the convergence cost amortized before the hot
	// phase (all workload queries driven to convergence).
	WarmupRequests int `json:"warmup_requests"`
	// Warmup measures the convergence drive itself — every request an
	// adaptive run mutating and recompiling the plan. This is ISSUE 4's
	// cold path: its throughput and allocs/request show what the engine
	// recycler + incremental compilation bought.
	Warmup     benchPhase `json:"adaptive_warmup"`
	Hot        benchPhase `json:"hot_adaptive"`
	ColdSerial benchPhase `json:"cold_serial"`
	// HotOverCold is hot wall-clock throughput over cold wall-clock
	// throughput at this shard count (> 1 means the adaptive hot path wins
	// in host time, not just virtual time).
	HotOverCold float64 `json:"hot_over_cold_throughput"`
	// VirtualSpeedup is cold mean virtual latency over hot mean virtual
	// latency: the paper's win from serving converged plans.
	VirtualSpeedup float64 `json:"virtual_speedup"`
}

// benchReport is the -selfbench output recorded as BENCH_serve.json: a
// shard-scaling sweep of the serving benchmark. The workload is K distinct
// select_sum queries (distinct fingerprints, so they pin to distinct
// shards) driven by concurrent clients; "hot" serves them through converged
// plan-cache sessions, "cold_serial" rebuilds and executes the serial plan
// per request.
type benchReport struct {
	Benchmark  string       `json:"benchmark"`
	DBIdentity string       `json:"db_identity"`
	Machine    string       `json:"machine"`
	Cores      int          `json:"logical_cores"`
	HostCPUs   int          `json:"host_cpus"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Queries    int          `json:"workload_queries"`
	Clients    int          `json:"concurrent_clients"`
	Sweep      []shardPoint `json:"sweep"`
	// HotBeatsColdAtShards is the smallest swept shard count at which hot
	// adaptive wall-clock throughput exceeds the same run's cold serial
	// throughput, or -1. Before the zero-copy exchange this stayed -1 on a
	// single-CPU host — a converged parallel plan paid an extra
	// materialize-then-concatenate cycle per exchange; with shared result
	// buffers and the recycling arena the hot path allocates an order of
	// magnitude less per request and wins within-run even on one core.
	HotBeatsColdAtShards int `json:"hot_beats_cold_at_shards"`
	// HTTPProbe records the one-off real-TCP measurement of both client
	// connection modes (keep-alive reuse vs connection-per-request); the
	// sweep itself drives the handler in-process so it measures the engine,
	// not TCP setup.
	HTTPProbe *httpProbe `json:"http_keepalive_probe,omitempty"`
	// WarmRestart records the persistence phase: converge against a store,
	// restart the server on the same store file, and compare the first
	// request's virtual latency cold (adapting from scratch) vs rehydrated
	// (served from the persisted converged plan).
	WarmRestart *warmRestartProbe `json:"warm_restart,omitempty"`
	// MultiTenant records the multi-tenant serving phase: three tenant
	// datasets (the default plus two generated with different seeds)
	// converging and then hot-serving the same query shape over one shared
	// shard pool, with the per-tenant /stats breakdown.
	MultiTenant *mtProbe `json:"multi_tenant,omitempty"`
	// Chaos records the resilience phase: steady-state serving, mid-run core
	// loss, the degradation depth on the stale plan, and the requests the
	// staleness detector needed to re-converge on the shrunken machine.
	Chaos *chaosProbe `json:"chaos,omitempty"`
	// Drift records the workload-drift phase: a query converges as its
	// tenant's dominant query, the mix rotates mid-run so it serves throttled
	// as a minority query, the drift detector reopens it sized to its
	// observed budget, and the warm re-convergence cost is compared to the
	// cold convergence cost.
	Drift *driftProbe `json:"workload_drift,omitempty"`
	// Federation records the two-node failover phase: a remotely-owned query
	// converges through one entry node, the owning node is killed
	// mid-traffic, and the survivor serves the re-pinned fingerprint from
	// its replicated plan.
	Federation *federationProbe `json:"federation,omitempty"`
	// Zipf records the coalescing phase: a Zipf-skewed concurrent client mix
	// posts results-negotiated requests at one shard, and single-flight
	// coalescing collapses identical in-flight requests into shared engine
	// runs (engine_runs < requests at equal correctness).
	Zipf *zipfProbe `json:"zipf_coalescing,omitempty"`
	// SeedBaseline quotes the seed daemon's recorded BENCH_serve.json
	// (single run-loop engine, seed event core, TPC-H q6 at sf=1): the
	// regression this PR fixes is hot adaptive serving being SLOWER than
	// that cold serial baseline in wall clock.
	SeedBaseline seedBaseline `json:"seed_baseline"`
	Notes        []string     `json:"notes"`
}

// seedBaseline is the seed's recorded serving throughput (PR 1 artifact),
// kept for PR-over-PR comparison.
type seedBaseline struct {
	HotRPS  float64 `json:"hot_repeated_rps"`
	ColdRPS float64 `json:"cold_serial_rps"`
	// HotBeatsSeedColdAtShards is the smallest swept shard count at which
	// this run's hot adaptive throughput exceeds the seed's cold serial
	// baseline, or -1.
	HotBeatsSeedColdAtShards int `json:"hot_beats_seed_cold_at_shards"`
}

// Seed BENCH_serve.json numbers (commit 304b0ef): the wall-clock inversion
// named in ISSUE 2 — hot adaptive served slower than cold serial.
const (
	seedHotRPS  = 1493.9183517598824
	seedColdRPS = 1938.522060313198
)

func runSelfbench(cfg apq.ServerConfig, sf float64, seed int64, queries, n int, phase string) error {
	switch phase {
	case "all", "drift", "federation", "zipf":
	default:
		return fmt.Errorf("apqd: unknown -selfbench-phase %q (want all, drift, federation, or zipf)", phase)
	}
	if phase == "zipf" {
		// Single-phase artifact for the CI coalescing smoke: only the
		// Zipf-skewed single-flight probe, one shard, minimal wall time.
		cfg.Admission = false
		cfg.StorePath = ""
		zp, err := runZipfProbe(cfg, queries, n)
		if err != nil {
			return err
		}
		rep := benchReport{
			Benchmark:            cfg.Benchmark,
			DBIdentity:           cfg.DBIdentity,
			Machine:              cfg.Machine.Name,
			Cores:                cfg.Machine.LogicalCores(),
			HostCPUs:             runtime.NumCPU(),
			GoMaxProcs:           runtime.GOMAXPROCS(0),
			HotBeatsColdAtShards: -1,
			SeedBaseline:         seedBaseline{HotRPS: seedHotRPS, ColdRPS: seedColdRPS, HotBeatsSeedColdAtShards: -1},
			Zipf:                 zp,
			Notes:                []string{zipfNote},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	if phase == "federation" {
		// Single-phase artifact, same shape as the drift smoke: only the
		// two-node failover probe, minimal wall time.
		cfg.Admission = false
		cfg.StorePath = ""
		fp, err := runFederationProbe(cfg, n)
		if err != nil {
			return err
		}
		rep := benchReport{
			Benchmark:            cfg.Benchmark,
			DBIdentity:           cfg.DBIdentity,
			Machine:              cfg.Machine.Name,
			Cores:                cfg.Machine.LogicalCores(),
			HostCPUs:             runtime.NumCPU(),
			GoMaxProcs:           runtime.GOMAXPROCS(0),
			HotBeatsColdAtShards: -1,
			SeedBaseline:         seedBaseline{HotRPS: seedHotRPS, ColdRPS: seedColdRPS, HotBeatsSeedColdAtShards: -1},
			Federation:           fp,
			Notes:                []string{federationNote},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	if phase == "drift" {
		// The CI smoke target: only the drift probe, one shard, minimal
		// wall time. The artifact is still a full benchReport so downstream
		// tooling parses one shape.
		cfg.Admission = false
		cfg.StorePath = ""
		dp, err := runDriftProbe(cfg)
		if err != nil {
			return err
		}
		rep := benchReport{
			Benchmark:            cfg.Benchmark,
			DBIdentity:           cfg.DBIdentity,
			Machine:              cfg.Machine.Name,
			Cores:                cfg.Machine.LogicalCores(),
			HostCPUs:             runtime.NumCPU(),
			GoMaxProcs:           runtime.GOMAXPROCS(0),
			HotBeatsColdAtShards: -1,
			SeedBaseline:         seedBaseline{HotRPS: seedHotRPS, ColdRPS: seedColdRPS, HotBeatsSeedColdAtShards: -1},
			Drift:                dp,
			Notes:                []string{driftNote},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	counts := shardSweep()
	rep := benchReport{
		Benchmark:            cfg.Benchmark,
		DBIdentity:           cfg.DBIdentity,
		Machine:              cfg.Machine.Name,
		Cores:                cfg.Machine.LogicalCores(),
		HostCPUs:             runtime.NumCPU(),
		GoMaxProcs:           runtime.GOMAXPROCS(0),
		Queries:              queries,
		HotBeatsColdAtShards: -1,
		SeedBaseline:         seedBaseline{HotRPS: seedHotRPS, ColdRPS: seedColdRPS, HotBeatsSeedColdAtShards: -1},
		Notes: []string{
			"hot_adaptive = converged plan-cache sessions over the shard pool; cold_serial = per-request plan build + serial execution on the same pool; adaptive_warmup = the convergence drive itself (every request an adaptive run that mutates and recompiles the plan)",
			"zero-copy exchange (ISSUE 3): partition clones write one shared result buffer, pack is a view, and the per-plan arena recycles buffers across invocations — allocs/request and KB/request record the hot path's footprint",
			"cold path (ISSUE 4): retired plans feed an engine-level size-classed buffer pool, mutated children compile incrementally against their parent (structural diff) and adopt the parent's arena; vs the PR 3 build the converging step dropped from 184 to 67 allocs/step (2.7x) and per-convergence wall time ~6% in BenchmarkServeAdaptiveWarmup (sf=0.5, identical 195 steps/convergence), cold serial from 154 to 140 allocs (~9% wall) in BenchmarkServeColdSerial; selfbench warmup allocs/request additionally include the bench client's JSON decoding",
			"hot_beats_cold_at_shards reports the within-run wall-clock crossover; the pre-zero-copy runs never crossed on a 1-CPU host (extra materialization per exchange), the seed inverted even against its own cold baseline",
			"seed_baseline quotes the seed daemon's recorded numbers (single channel run-loop, seed event core)",
		},
	}
	// Admission control throttles later concurrent clients toward serial,
	// which is the right production default but would make the hot phase
	// measure the throttle, not the serving path; the sweep disables it.
	// The sweep's servers never share a store file (each phase would be
	// polluted by the previous one's persisted plans); the warm-restart
	// probe below uses its own temporary store.
	cfg.Admission = false
	cfg.StorePath = ""
	for _, sc := range counts {
		cfg.Shards = sc
		pt, clients, err := benchShardCount(cfg, queries, n)
		if err != nil {
			return err
		}
		rep.Clients = clients
		rep.Sweep = append(rep.Sweep, pt)
		if rep.HotBeatsColdAtShards < 0 && pt.HotOverCold > 1 {
			rep.HotBeatsColdAtShards = sc
		}
		if rep.SeedBaseline.HotBeatsSeedColdAtShards < 0 && pt.Hot.ThroughputRPS > seedColdRPS {
			rep.SeedBaseline.HotBeatsSeedColdAtShards = sc
		}
	}
	probe, err := runHTTPProbe(cfg, n)
	if err != nil {
		return err
	}
	rep.HTTPProbe = probe
	mt, err := runMultiTenantProbe(cfg, sf, seed, n)
	if err != nil {
		return err
	}
	rep.MultiTenant = mt
	wr, err := runWarmRestartProbe(cfg)
	if err != nil {
		return err
	}
	rep.WarmRestart = wr
	ch, err := runChaosProbe(cfg, n)
	if err != nil {
		return err
	}
	rep.Chaos = ch
	dp, err := runDriftProbe(cfg)
	if err != nil {
		return err
	}
	rep.Drift = dp
	fp, err := runFederationProbe(cfg, n)
	if err != nil {
		return err
	}
	rep.Federation = fp
	zp, err := runZipfProbe(cfg, queries, n)
	if err != nil {
		return err
	}
	rep.Zipf = zp
	rep.Notes = append(rep.Notes, driftNote, federationNote, zipfNote)
	rep.Notes = append(rep.Notes,
		"chaos (ISSUE 7): converge one query with staleness detection armed, measure steady-state serving, then lose most of the machine mid-run via InjectFault — degradation_depth is the stale converged plan's latency blowout on the shrunken machine, reconverge_requests counts servings from the fault until the staleness detector reopened convergence and the session re-converged, and reconverged_virtual_ns shows the recovered plan beating the stale one",
		"warm_restart converges one query against a temporary -store file, restarts the server on the same file, and compares first-request virtual latency cold (first adaptive run from scratch) vs rehydrated (served converged from the persisted plan); rehydrated_sessions is the restarted server's /stats store counter",
		"http_keepalive_probe serves the converged hot workload over a real localhost listener in both client modes: keepalive_rps reuses pooled connections (the tuned IdleTimeout keeps them open), new_conn_rps opens a TCP connection per request — the sweep drives the handler in-process precisely so the engine, not connection setup, is what the shard scaling measures",
		"multi_tenant converges the same select_sum shape on three tenant datasets (default + two generated with different seeds) over one shared 2-shard pool, then hot-serves all three concurrently; per_tenant is the /stats tenant breakdown — distinct sessions per tenant because fingerprints incorporate each tenant's dataset identity")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// httpProbe is the one-off real-TCP keep-alive measurement.
type httpProbe struct {
	Shards   int `json:"shards"`
	Requests int `json:"requests"`
	// KeepAliveRPS reuses pooled client connections (IdleTimeout keeps them
	// alive between requests); NewConnRPS disables keep-alive, paying TCP
	// setup per request.
	KeepAliveRPS     float64 `json:"keepalive_rps"`
	NewConnRPS       float64 `json:"new_conn_rps"`
	KeepAliveOverNew float64 `json:"keepalive_over_new_conn"`
}

// runHTTPProbe converges one query, then serves it over a real loopback
// listener (with the production keep-alive tuning) under both client
// connection modes.
func runHTTPProbe(cfg apq.ServerConfig, n int) (*httpProbe, error) {
	cfg.Shards = 1
	s, err := apq.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/query"
	body := `{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":6}}`

	reuse := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	perConn := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	serveState := func(c *http.Client) (string, error) {
		resp, err := c.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("selfbench http probe: status %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return "", err
		}
		state, _ := out["state"].(string)
		return state, nil
	}
	// Converge over the keep-alive client so both measured phases serve the
	// learned plan; like the sweep's warmup, failing to converge is an
	// error, not a silently mislabeled measurement.
	converged := false
	for i := 0; i < 4000 && !converged; i++ {
		state, err := serveState(reuse)
		if err != nil {
			return nil, err
		}
		converged = state == "converged"
	}
	if !converged {
		return nil, fmt.Errorf("selfbench http probe: query did not converge within 4000 warmup requests")
	}
	measure := func(c *http.Client) (float64, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := serveState(c); err != nil {
				return 0, err
			}
		}
		return float64(n) / time.Since(start).Seconds(), nil
	}
	p := &httpProbe{Shards: 1, Requests: n}
	if p.KeepAliveRPS, err = measure(reuse); err != nil {
		return nil, err
	}
	if p.NewConnRPS, err = measure(perConn); err != nil {
		return nil, err
	}
	if p.NewConnRPS > 0 {
		p.KeepAliveOverNew = p.KeepAliveRPS / p.NewConnRPS
	}
	return p, nil
}

// mtTenantStats is one tenant's slice of the multi-tenant phase, lifted from
// the /stats tenant breakdown after the hot phase.
type mtTenantStats struct {
	Tenant     string `json:"tenant"`
	DBIdentity string `json:"db_identity"`
	Requests   int64  `json:"requests"`
	Sessions   int    `json:"sessions"`
	Converged  int    `json:"converged"`
	CacheHits  int64  `json:"cache_hits"`
}

// mtProbe is the -selfbench multi-tenant serving measurement.
type mtProbe struct {
	Shards         int             `json:"shards"`
	Tenants        int             `json:"tenants"`
	WarmupRequests int             `json:"warmup_requests"`
	Requests       int             `json:"requests"`
	HotRPS         float64         `json:"hot_adaptive_rps"`
	PerTenant      []mtTenantStats `json:"per_tenant"`
}

// runMultiTenantProbe serves the same select_sum shape for three tenants
// (the default dataset plus two generated with different seeds) over one
// 2-shard pool: convergence per tenant first, then a concurrent hot phase,
// then the per-tenant /stats breakdown.
func runMultiTenantProbe(cfg apq.ServerConfig, sf float64, seed int64, n int) (*mtProbe, error) {
	cfg.Shards = 2
	cfg.Tenants = []apq.TenantConfig{
		{Name: "tenant-a", Benchmark: cfg.Benchmark, SF: sf, Seed: seed + 1},
		{Name: "tenant-b", Benchmark: cfg.Benchmark, SF: sf, Seed: seed + 2},
	}
	s, err := apq.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	h := s.Handler()
	serve := func(method, path, body string) (map[string]any, error) {
		var rd *bytes.Reader
		if body != "" {
			rd = bytes.NewReader([]byte(body))
		} else {
			rd = bytes.NewReader(nil)
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, path, rd)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("selfbench multi-tenant: %s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			return nil, err
		}
		return out, nil
	}

	bodies := []string{
		`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":6}}`,
		`{"tenant":"tenant-a","select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":6}}`,
		`{"tenant":"tenant-b","select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":6}}`,
	}
	p := &mtProbe{Shards: cfg.Shards, Tenants: len(bodies)}
	for i, body := range bodies {
		converged := false
		for r := 0; r < 4000 && !converged; r++ {
			resp, err := serve(http.MethodPost, "/query", body)
			if err != nil {
				return nil, err
			}
			p.WarmupRequests++
			converged = resp["state"] == "converged"
		}
		if !converged {
			return nil, fmt.Errorf("selfbench multi-tenant: tenant %d did not converge within 4000 warmup requests", i)
		}
	}

	clients := 4
	perClient := n / clients
	if perClient < 1 {
		perClient = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := serve(http.MethodPost, "/query", bodies[(c+i)%len(bodies)]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	p.Requests = clients * perClient
	p.HotRPS = float64(p.Requests) / time.Since(start).Seconds()

	// Lift the per-tenant breakdown out of /stats.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("selfbench multi-tenant: /stats status %d", rec.Code)
	}
	var stats struct {
		Tenants []struct {
			Tenant     string `json:"tenant"`
			DBIdentity string `json:"db_identity"`
			Requests   int64  `json:"requests"`
			Cache      struct {
				Entries   int   `json:"entries"`
				Hits      int64 `json:"hits"`
				Converged int   `json:"converged"`
			} `json:"cache"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		return nil, err
	}
	for _, t := range stats.Tenants {
		p.PerTenant = append(p.PerTenant, mtTenantStats{
			Tenant:     t.Tenant,
			DBIdentity: t.DBIdentity,
			Requests:   t.Requests,
			Sessions:   t.Cache.Entries,
			Converged:  t.Cache.Converged,
			CacheHits:  t.Cache.Hits,
		})
	}
	return p, nil
}

// warmRestartProbe is the -selfbench persistence measurement: the cost of
// the first request on a cold server (one adaptive run from scratch) vs the
// first request after a restart that rehydrated the converged session from
// the store.
type warmRestartProbe struct {
	Shards int `json:"shards"`
	// ConvergeRequests is how many adaptive runs the first server needed
	// before the plan converged and was persisted.
	ConvergeRequests int `json:"converge_requests"`
	// StoreRecords / RehydratedSessions come from the restarted server's
	// /stats store block: records on disk, sessions restored at startup.
	StoreRecords       int `json:"store_records"`
	RehydratedSessions int `json:"rehydrated_sessions"`
	// ColdFirstVirtualNs is the first request's virtual latency on the
	// fresh server (serial plan, first adaptive run); WarmFirstVirtualNs is
	// the first request's virtual latency on the restarted server, served
	// from the rehydrated converged plan.
	ColdFirstVirtualNs float64 `json:"cold_first_virtual_ns"`
	WarmFirstVirtualNs float64 `json:"warm_first_virtual_ns"`
	// WarmFirstConverged records that the restarted server's FIRST request
	// was already in the converged state — the warm-restart property.
	WarmFirstConverged bool `json:"warm_first_converged"`
	// VirtualSpeedup is cold-first over warm-first virtual latency: the
	// restart win from persistence.
	VirtualSpeedup float64 `json:"virtual_speedup"`
	// Wall-clock first-request times (host ms). The warm number includes no
	// convergence but does include the plan's one-time compilation.
	ColdFirstWallMs float64 `json:"cold_first_wall_ms"`
	WarmFirstWallMs float64 `json:"warm_first_wall_ms"`
}

// runWarmRestartProbe converges one query against a temporary store file,
// closes the server (flushing the write-behind queue), restarts on the same
// store, and measures the restarted server's first request.
func runWarmRestartProbe(cfg apq.ServerConfig) (*warmRestartProbe, error) {
	dir, err := os.MkdirTemp("", "apqd-selfbench-store-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg.Shards = 1
	cfg.Tenants = nil
	cfg.StorePath = filepath.Join(dir, "conv.apqs")
	body := `{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":6}}`

	serve := func(h http.Handler, method, path, body string) (map[string]any, error) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("selfbench warm-restart: %s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			return nil, err
		}
		return out, nil
	}

	p := &warmRestartProbe{Shards: cfg.Shards}

	// Phase 1: fresh server on an empty store. The first request is the
	// cold measurement; then drive to convergence so the session persists.
	s1, err := apq.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	h1 := s1.Handler()
	t0 := time.Now()
	resp, err := serve(h1, http.MethodPost, "/query", body)
	if err != nil {
		s1.Close()
		return nil, err
	}
	p.ColdFirstWallMs = float64(time.Since(t0).Microseconds()) / 1e3
	p.ColdFirstVirtualNs, _ = resp["latency_ns"].(float64)
	p.ConvergeRequests = 1
	for r := 0; r < 4000 && resp["state"] != "converged"; r++ {
		if resp, err = serve(h1, http.MethodPost, "/query", body); err != nil {
			s1.Close()
			return nil, err
		}
		p.ConvergeRequests++
	}
	converged := resp["state"] == "converged"
	// Close flushes the write-behind queue and closes the store.
	s1.Close()
	if !converged {
		return nil, fmt.Errorf("selfbench warm-restart: query did not converge within 4000 requests")
	}

	// Phase 2: restart on the same store file; the first request must be
	// served from the rehydrated converged session.
	s2, err := apq.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer s2.Close()
	h2 := s2.Handler()
	t0 = time.Now()
	if resp, err = serve(h2, http.MethodPost, "/query", body); err != nil {
		return nil, err
	}
	p.WarmFirstWallMs = float64(time.Since(t0).Microseconds()) / 1e3
	p.WarmFirstVirtualNs, _ = resp["latency_ns"].(float64)
	p.WarmFirstConverged = resp["state"] == "converged"
	if p.WarmFirstVirtualNs > 0 {
		p.VirtualSpeedup = p.ColdFirstVirtualNs / p.WarmFirstVirtualNs
	}

	stats, err := serve(h2, http.MethodGet, "/stats", "")
	if err != nil {
		return nil, err
	}
	if st, ok := stats["store"].(map[string]any); ok {
		if v, ok := st["records"].(float64); ok {
			p.StoreRecords = int(v)
		}
		if v, ok := st["rehydrated_sessions"].(float64); ok {
			p.RehydratedSessions = int(v)
		}
	}
	return p, nil
}

// chaosProbe is the -selfbench resilience measurement (ISSUE 7): what a
// mid-run loss of most of the machine costs a converged serving path, and
// how quickly staleness detection wins the lost ground back.
type chaosProbe struct {
	Shards int `json:"shards"`
	// Steady-state serving of the converged plan before the fault.
	SteadyRPS       float64 `json:"steady_rps"`
	SteadyVirtualNs float64 `json:"steady_virtual_ns"`
	// CoresBefore / CoresAfter bracket the injected core loss.
	CoresBefore int `json:"cores_before"`
	CoresAfter  int `json:"cores_after"`
	// DegradedVirtualNs is the first serving run after the fault — the stale
	// converged plan executing on the shrunken machine — and
	// DegradationDepth its blowout over steady state.
	DegradedVirtualNs float64 `json:"degraded_virtual_ns"`
	DegradationDepth  float64 `json:"degradation_depth"`
	// ReconvergeRequests counts servings from the fault until the staleness
	// detector reopened convergence AND the session re-converged on the
	// shrunken machine (detection window + bounded re-exploration).
	ReconvergeRequests int `json:"reconverge_requests"`
	// Re-converged steady state, and what re-adaptation won back over
	// serving the stale plan (degraded over re-converged virtual latency).
	ReconvergedVirtualNs float64 `json:"reconverged_virtual_ns"`
	ReconvergedRPS       float64 `json:"reconverged_rps"`
	RecoveredSpeedup     float64 `json:"recovered_speedup"`
	// FaultsInjected / CoresLost / Reconvergences echo the /stats resilience
	// block after the run.
	FaultsInjected int `json:"faults_injected"`
	CoresLost      int `json:"cores_lost"`
	Reconvergences int `json:"reconvergences"`
}

// runChaosProbe converges one query with staleness detection armed, measures
// steady-state serving, then removes every core but four mid-run and
// measures the degradation and the recovery.
func runChaosProbe(cfg apq.ServerConfig, n int) (*chaosProbe, error) {
	cfg.Shards = 1
	cfg.Tenants = nil
	cfg.StorePath = ""
	cfg.Staleness = apq.DefaultStaleness()
	// A full-range scan converges to a wide plan, so losing the machine out
	// from under it actually hurts — a narrow probe would fit the survivors.
	body := `{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":500}}`
	s, err := apq.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	h := s.Handler()
	serve := func(method, path, body string) (map[string]any, error) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("selfbench chaos: %s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			return nil, err
		}
		return out, nil
	}

	var resp map[string]any
	converged := false
	for i := 0; i < 4000 && !converged; i++ {
		if resp, err = serve(http.MethodPost, "/query", body); err != nil {
			return nil, err
		}
		converged = resp["state"] == "converged"
	}
	if !converged {
		return nil, errors.New("selfbench chaos: query did not converge within 4000 warmup requests")
	}

	p := &chaosProbe{Shards: 1, CoresBefore: cfg.Machine.LogicalCores(), CoresAfter: 2}
	start := time.Now()
	for i := 0; i < n; i++ {
		if resp, err = serve(http.MethodPost, "/query", body); err != nil {
			return nil, err
		}
	}
	p.SteadyRPS = float64(n) / time.Since(start).Seconds()
	p.SteadyVirtualNs, _ = resp["latency_ns"].(float64)

	// The fault: every core except the first two, lost mid-run.
	lost := make([]int, 0, p.CoresBefore-p.CoresAfter)
	for c := p.CoresAfter; c < p.CoresBefore; c++ {
		lost = append(lost, c)
	}
	if err := s.InjectFault(0, apq.FaultEvent{Kind: apq.FaultCoreLoss, Cores: lost}); err != nil {
		return nil, err
	}

	if resp, err = serve(http.MethodPost, "/query", body); err != nil {
		return nil, err
	}
	p.DegradedVirtualNs, _ = resp["latency_ns"].(float64)
	if p.SteadyVirtualNs > 0 {
		p.DegradationDepth = p.DegradedVirtualNs / p.SteadyVirtualNs
	}
	p.ReconvergeRequests = 1
	reopened, reconverged := false, false
	for i := 0; i < 4000 && !reconverged; i++ {
		if resp, err = serve(http.MethodPost, "/query", body); err != nil {
			return nil, err
		}
		p.ReconvergeRequests++
		if resp["state"] == "adapting" {
			reopened = true
		}
		reconverged = reopened && resp["state"] == "converged"
	}
	if !reconverged {
		return nil, fmt.Errorf("selfbench chaos: session did not re-converge within 4000 requests of the fault (reopened %v, degradation %.2fx)",
			reopened, p.DegradationDepth)
	}

	start = time.Now()
	for i := 0; i < n; i++ {
		if resp, err = serve(http.MethodPost, "/query", body); err != nil {
			return nil, err
		}
	}
	p.ReconvergedRPS = float64(n) / time.Since(start).Seconds()
	p.ReconvergedVirtualNs, _ = resp["latency_ns"].(float64)
	if p.ReconvergedVirtualNs > 0 {
		p.RecoveredSpeedup = p.DegradedVirtualNs / p.ReconvergedVirtualNs
	}

	stats, err := serve(http.MethodGet, "/stats", "")
	if err != nil {
		return nil, err
	}
	if res, ok := stats["resilience"].(map[string]any); ok {
		if v, ok := res["faults_injected"].(float64); ok {
			p.FaultsInjected = int(v)
		}
		if v, ok := res["cores_lost"].(float64); ok {
			p.CoresLost = int(v)
		}
		if v, ok := res["reconvergences"].(float64); ok {
			p.Reconvergences = int(v)
		}
	}
	return p, nil
}

const driftNote = "workload_drift: q6 converges as the tenant's only (unthrottled) query, the mix then rotates to 3:1 q14-dominant with q6 under a 2-core client budget (max_cores) — the minority-query regime; the drift detector reopens it sized to its observed budget and reconverge_requests counts q6 servings from the reopen back to converged — warm_over_cold_runs compares that against the cold convergence cost (the budget-sized reopened instance explores a far smaller plan space than the cold full-width one)"

// driftProbe is the -selfbench workload-drift measurement (the `drift`
// phase): what a mid-run query-mix rotation costs a converged serving path,
// and how warm (budget-sized) re-convergence compares to cold convergence.
type driftProbe struct {
	Shards int `json:"shards"`
	// ColdConvergeRequests is the servings q6 needed to converge from
	// scratch as the tenant's only query.
	ColdConvergeRequests int `json:"cold_converge_requests"`
	// RotateRequests counts q6 servings after the mix rotated (3 concurrent
	// q14 servings per q6 serving, admission control on) until the drift
	// detector reopened the session.
	RotateRequests int `json:"rotate_requests"`
	// ReconvergeRequests counts q6 servings from the drift reopen until the
	// session re-converged under its observed budget.
	ReconvergeRequests int `json:"reconverge_requests"`
	// WarmOverColdRuns is ReconvergeRequests over ColdConvergeRequests —
	// below 1 means the budget-sized warm reopen re-converged cheaper than
	// cold convergence did.
	WarmOverColdRuns float64 `json:"warm_over_cold_runs"`
	// DriftReopens echoes the /stats cache counter after the run.
	DriftReopens int64 `json:"drift_reopens"`
}

// runDriftProbe converges q6 alone, rotates the mix to q14-dominant under
// admission control so q6 serves throttled, waits for the drift detector to
// reopen it, then measures the warm re-convergence.
func runDriftProbe(cfg apq.ServerConfig) (*driftProbe, error) {
	cfg.Shards = 1
	cfg.Tenants = nil
	cfg.StorePath = ""
	cfg.Admission = false // the client budget below throttles deterministically
	cfg.Staleness = apq.DefaultStaleness()
	// A tight mix window makes the rotation visible quickly; the bands match
	// DefaultDrift.
	cfg.Drift = apq.DriftConfig{Band: 0.35, Window: 8, Trip: 6, MixWindow: 16, MixDelta: 0.2}
	s, err := apq.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	h := s.Handler()
	serve := func(body string) (map[string]any, error) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte(body)))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("selfbench drift: status %d: %s", rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			return nil, err
		}
		return out, nil
	}
	q6, q14 := `{"query":6}`, `{"query":14}`

	p := &driftProbe{Shards: 1}
	converged := false
	for i := 0; i < 4000 && !converged; i++ {
		resp, err := serve(q6)
		if err != nil {
			return nil, err
		}
		p.ColdConvergeRequests++
		converged = resp["state"] == "converged"
	}
	if !converged {
		return nil, errors.New("selfbench drift: q6 did not converge within 4000 warmup requests")
	}

	// Rotate the mix: three q14 servings per q6 serving, with q6 now under
	// a 2-core client budget — the minority-query regime. The throttled
	// out-of-band latencies plus the mix-share shift trip the drift
	// detector (staleness deliberately skips throttled runs).
	q6Throttled := `{"query":6,"max_cores":2}`
	rotate := func(onQ6 func(map[string]any) bool) error {
		for i := 0; i < 4000; i++ {
			for j := 0; j < 3; j++ {
				if _, err := serve(q14); err != nil {
					return err
				}
			}
			resp, err := serve(q6Throttled)
			if err != nil {
				return err
			}
			if onQ6(resp) {
				return nil
			}
		}
		return errors.New("selfbench drift: phase did not complete within 4000 q6 servings")
	}

	// Phase 1 of the rotation: until the drift detector reopens (the
	// converged session flips back to adapting — staleness skips throttled
	// servings, so under this mix only the drift detector can reopen it).
	if err := rotate(func(resp map[string]any) bool {
		p.RotateRequests++
		return resp["state"] == "adapting"
	}); err != nil {
		return nil, err
	}
	// Phase 2: until re-converged under the budget, mix still rotated.
	if err := rotate(func(resp map[string]any) bool {
		p.ReconvergeRequests++
		return resp["state"] == "converged"
	}); err != nil {
		return nil, err
	}
	if p.ColdConvergeRequests > 0 {
		p.WarmOverColdRuns = float64(p.ReconvergeRequests) / float64(p.ColdConvergeRequests)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("selfbench drift: /stats status %d", rec.Code)
	}
	var stResp struct {
		Cache struct {
			DriftReopens int64 `json:"drift_reopens"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stResp); err != nil {
		return nil, err
	}
	p.DriftReopens = stResp.Cache.DriftReopens
	if p.DriftReopens < 1 {
		return nil, errors.New("selfbench drift: /stats shows no drift reopen")
	}
	return p, nil
}

// zipfNote documents the zipf_coalescing phase for artifact readers.
const zipfNote = "zipf_coalescing (ISSUE 10): concurrent clients sample a Zipf-skewed query mix (results-negotiated APQRESULT responses) against one shard — identical in-flight requests coalesce into shared single-flight engine runs, so engine_runs lands below requests while every response decodes to the same payload; p50/p99 are client-observed wall latencies"

// zipfProbe is the -selfbench zipf phase: single-flight coalescing measured
// under a skewed concurrent mix over the columnar result path.
type zipfProbe struct {
	Shards          int     `json:"shards"`
	Clients         int     `json:"clients"`
	DistinctQueries int     `json:"distinct_queries"`
	ZipfS           float64 `json:"zipf_s"`
	// Requests counts measured requests, including any storm rounds the
	// probe appended to witness at least one coalesced request on hosts
	// whose scheduler never overlapped two identical requests organically.
	Requests int `json:"requests"`
	// EngineRuns is the plan-cache lookup delta (hits+misses) over the
	// measured window — coalesced waiters never reach the cache, so
	// requests - engine_runs is the work the single-flight layer saved.
	EngineRuns        int64   `json:"engine_runs"`
	CoalescedRequests int64   `json:"coalesced_requests"`
	RunsOverRequests  float64 `json:"runs_over_requests"`
	P50Ms             float64 `json:"p50_ms"`
	P99Ms             float64 `json:"p99_ms"`
	ResultBytesSent   int64   `json:"result_bytes_sent"`
}

// runZipfProbe converges a small distinct-query set on one shard, then
// hammers it with concurrent clients whose query choice is Zipf-distributed.
// The skew makes identical requests overlap in flight, which the server's
// fingerprint-keyed single-flight layer coalesces into shared engine runs.
// Responses are results-negotiated: every reply is an APQRESULT stream and
// is decoded as a correctness gate before its latency counts.
func runZipfProbe(cfg apq.ServerConfig, queries, n int) (*zipfProbe, error) {
	cfg.Shards = 1 // one shard concentrates the mix so identical requests collide
	cfg.Tenants = nil
	cfg.StorePath = ""
	cfg.Admission = false // admission would serialize the very overlap the probe measures
	s, err := apq.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	h := s.Handler()

	// Coalescing needs two identical requests genuinely in flight at once.
	// On a single-P runtime, CPU-bound in-process requests run to completion
	// back to back and never overlap, so the busy gate (correctly) never
	// fires; give the client goroutines their own Ps so a leader can be
	// preempted mid-run while the rest of the burst reaches the gate — the
	// overlap a real daemon gets for free from network concurrency.
	const clients = 8
	if prev := runtime.GOMAXPROCS(0); prev < clients {
		runtime.GOMAXPROCS(clients)
		defer runtime.GOMAXPROCS(prev)
	}

	if queries < 2 {
		queries = 2
	}
	// select_rows, widest range first: the Zipf-hot query materializes the
	// largest column, so its engine runs are long enough to overlap (and its
	// APQRESULT stream spans many chunk frames — the probe exercises the
	// multi-chunk path, not just scalars).
	warm := make([]string, queries)
	hot := make([]string, queries)
	for i := range warm {
		hi := 50 - i
		if hi < 1 {
			hi = 1
		}
		spec := fmt.Sprintf(`"select_rows":{"table":"lineitem","column":"l_quantity","lo":1,"hi":%d}`, hi)
		warm[i] = "{" + spec + "}"
		hot[i] = "{" + spec + `,"results":true}`
	}

	serveJSON := func(body string) (map[string]any, error) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte(body)))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("selfbench zipf: status %d: %s", rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			return nil, err
		}
		return out, nil
	}
	for i, body := range warm {
		converged := false
		for j := 0; j < 4000 && !converged; j++ {
			resp, err := serveJSON(body)
			if err != nil {
				return nil, err
			}
			converged = resp["state"] == "converged"
		}
		if !converged {
			return nil, fmt.Errorf("selfbench zipf: query %d did not converge within 4000 warmup requests", i)
		}
	}

	stats := func() (runs, coalesced, resultBytes int64, err error) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
		if rec.Code != http.StatusOK {
			return 0, 0, 0, fmt.Errorf("selfbench zipf: /stats status %d", rec.Code)
		}
		var st struct {
			Cache struct {
				Hits   int64 `json:"hits"`
				Misses int64 `json:"misses"`
			} `json:"cache"`
			CoalescedRequests int64 `json:"coalesced_requests"`
			ResultBytesSent   int64 `json:"result_bytes_sent"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			return 0, 0, 0, err
		}
		return st.Cache.Hits + st.Cache.Misses, st.CoalescedRequests, st.ResultBytesSent, nil
	}

	serveResult := func(body string) (time.Duration, error) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte(body)))
		start := time.Now()
		h.ServeHTTP(rec, req)
		elapsed := time.Since(start)
		if rec.Code != http.StatusOK {
			return 0, fmt.Errorf("selfbench zipf: status %d: %s", rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != apq.ResultContentType {
			return 0, fmt.Errorf("selfbench zipf: Content-Type %q, want %q", ct, apq.ResultContentType)
		}
		if _, err := apq.DecodeResult(rec.Body.Bytes()); err != nil {
			return 0, fmt.Errorf("selfbench zipf: decode: %w", err)
		}
		return elapsed, nil
	}

	const zipfS = 1.2
	rounds := n / clients
	if rounds < 1 {
		rounds = 1
	}

	runs0, coal0, bytes0, err := stats()
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex
	var lats []time.Duration
	var serveErr error
	round := func(pick func(c int) string) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				elapsed, err := serveResult(body)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if serveErr == nil {
						serveErr = err
					}
					return
				}
				lats = append(lats, elapsed)
			}(pick(c))
		}
		wg.Wait()
	}

	zipfs := make([]*rand.Zipf, clients)
	for c := range zipfs {
		zipfs[c] = rand.NewZipf(rand.New(rand.NewSource(int64(c)+1)), zipfS, 1, uint64(queries-1))
	}
	for r := 0; r < rounds && serveErr == nil; r++ {
		round(func(c int) string { return hot[zipfs[c].Uint64()] })
	}
	if serveErr != nil {
		return nil, serveErr
	}

	// The skewed mix almost always collides; if this host's scheduler never
	// overlapped two identical requests, append storm rounds (every client
	// on the hottest query) until one coalesced request is witnessed.
	for extra := 0; extra < 200; extra++ {
		_, coal, _, err := stats()
		if err != nil {
			return nil, err
		}
		if coal > coal0 {
			break
		}
		round(func(int) string { return hot[0] })
		if serveErr != nil {
			return nil, serveErr
		}
	}

	runs1, coal1, bytes1, err := stats()
	if err != nil {
		return nil, err
	}
	if coal1 <= coal0 {
		return nil, errors.New("selfbench zipf: no coalesced request witnessed")
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(p*float64(len(lats)-1))]) / 1e6
	}
	zp := &zipfProbe{
		Shards:            1,
		Clients:           clients,
		DistinctQueries:   queries,
		ZipfS:             zipfS,
		Requests:          len(lats),
		EngineRuns:        runs1 - runs0,
		CoalescedRequests: coal1 - coal0,
		P50Ms:             quantile(0.50),
		P99Ms:             quantile(0.99),
		ResultBytesSent:   bytes1 - bytes0,
	}
	if zp.Requests > 0 {
		zp.RunsOverRequests = float64(zp.EngineRuns) / float64(zp.Requests)
	}
	if zp.EngineRuns >= int64(zp.Requests) {
		return nil, fmt.Errorf("selfbench zipf: engine runs (%d) not below requests (%d)", zp.EngineRuns, zp.Requests)
	}
	return zp, nil
}

// federationProbe is the -selfbench federation phase: a two-node cluster
// over real loopback listeners converges a remotely-owned query through one
// entry node, the owning node is killed mid-traffic, and the probe measures
// the failover — the error budget the client saw and how warm the
// survivor's replicated seed was.
type federationProbe struct {
	Nodes int `json:"nodes"`
	// OwnerQueryLo identifies the probed query (its select_sum lo bound);
	// chosen so the remote node owns its fingerprint on the ring.
	OwnerQueryLo int64 `json:"owner_query_lo"`
	// ColdConvergeRequests is what first convergence cost on the owner.
	ColdConvergeRequests int `json:"cold_converge_requests"`
	// ForwardedByEntry counts the entry node's remote routings during the
	// converge drive (every request of the drive, if routing worked).
	ForwardedByEntry int64 `json:"forwarded_by_entry"`
	// ReplicaApplied is how many replicated records the entry node accepted
	// before the kill — the warm seeds failover draws on.
	ReplicaApplied int64 `json:"replica_applied"`
	// FailoverRequests / FailoverErrors: requests driven after the owner
	// was killed, and how many of them the client saw fail (the acceptance
	// bar is zero — the survivor absorbs the re-pin).
	FailoverRequests int `json:"failover_requests"`
	FailoverErrors   int `json:"failover_errors"`
	// WarmReconvergeRequests counts post-kill requests until the re-pinned
	// fingerprint served "converged" on the survivor (0 = the very first
	// failover request served converged from the replicated plan).
	WarmReconvergeRequests int `json:"warm_reconverge_requests"`
	// Failovers is the entry node's failover counter after the drive.
	Failovers int64 `json:"failovers"`
	// PeerBreakerTrips is how often the entry node's breaker for the dead
	// peer opened during the failover drive.
	PeerBreakerTrips int64 `json:"peer_breaker_trips"`
}

const federationNote = "federation (PR 9): two single-shard nodes federate over real loopback listeners; a query whose fingerprint the remote node owns converges through the entry node (every request forwarded), the owner is killed mid-traffic, and the drive continues through the entry node — failover_errors is the client-visible error count (bar: zero; bounded retries absorb the kill), warm_reconverge_requests counts requests until the re-pinned fingerprint served converged on the survivor from its replicated plan (bar: fewer than cold_converge_requests)"

func runFederationProbe(cfg apq.ServerConfig, n int) (*federationProbe, error) {
	cfg.Shards = 1
	cfg.Admission = false
	cfg.StorePath = ""
	// Listeners first: each node's config names its peer's URL, so both
	// addresses must exist before either server does.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnA.Close()
		return nil, err
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	mkNode := func(self, peerName, peerURL string) (*apq.Server, error) {
		c := cfg
		c.Cluster = &apq.ClusterConfig{
			Self:            self,
			Peers:           []apq.ClusterPeer{{Name: peerName, URL: peerURL}},
			RetryBase:       5 * time.Millisecond,
			BreakerFailures: 1,
			BreakerCooldown: 250 * time.Millisecond,
		}
		return apq.NewServer(c)
	}
	sA, err := mkNode("a", "b", urlB)
	if err != nil {
		lnA.Close()
		lnB.Close()
		return nil, err
	}
	defer sA.Close()
	sB, err := mkNode("b", "a", urlA)
	if err != nil {
		lnA.Close()
		lnB.Close()
		return nil, err
	}
	defer sB.Close()
	hsA := &http.Server{Handler: sA.Handler(), ReadHeaderTimeout: 5 * time.Second}
	hsB := &http.Server{Handler: sB.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hsA.Serve(lnA)
	go hsB.Serve(lnB)
	defer hsA.Close()
	defer hsB.Close()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	post := func(lo int64) (state string, failed bool, err error) {
		body := fmt.Sprintf(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":%d,"hi":%d}}`, lo, lo+7)
		resp, err := client.Post(urlA+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			return "", true, nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", true, nil
		}
		var out struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return "", false, err
		}
		return out.State, false, nil
	}

	p := &federationProbe{Nodes: 2, OwnerQueryLo: -1}
	// Find a query B owns: drive candidates through A and watch A's
	// forwarded counter move.
	for lo := int64(1); lo <= 64; lo++ {
		before, _ := sA.ClusterStats()
		if _, failed, err := post(lo); err != nil || failed {
			return nil, fmt.Errorf("selfbench federation: probe request failed (lo=%d, err=%v)", lo, err)
		}
		after, _ := sA.ClusterStats()
		if after.Forwarded > before.Forwarded {
			p.OwnerQueryLo = lo
			break
		}
	}
	if p.OwnerQueryLo < 0 {
		return nil, errors.New("selfbench federation: no candidate fingerprint hashed to the remote node")
	}
	// Converge it through A; every request forwards to its owner B.
	converged := false
	for i := 0; i < 4000 && !converged; i++ {
		state, failed, err := post(p.OwnerQueryLo)
		if err != nil || failed {
			return nil, fmt.Errorf("selfbench federation: converge request failed (err=%v)", err)
		}
		p.ColdConvergeRequests++
		converged = state == "converged"
	}
	if !converged {
		return nil, errors.New("selfbench federation: query did not converge within 4000 requests")
	}
	stA, _ := sA.ClusterStats()
	p.ForwardedByEntry = stA.Forwarded
	// Wait for B's write-behind replicator to land the converged record on
	// A — that replica is what failover below serves from.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		stA, _ = sA.ClusterStats()
		if stA.Replication.RecordsApplied > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.ReplicaApplied = stA.Replication.RecordsApplied
	if p.ReplicaApplied == 0 {
		return nil, errors.New("selfbench federation: owner's converged plan never replicated to the entry node")
	}
	// Kill the owner mid-traffic and keep driving through A.
	hsB.Close()
	sB.Close()
	if n < 20 {
		n = 20
	}
	sawConverged := false
	for i := 0; i < n; i++ {
		state, failed, err := post(p.OwnerQueryLo)
		if err != nil {
			return nil, err
		}
		p.FailoverRequests++
		if failed {
			p.FailoverErrors++
			continue
		}
		if !sawConverged {
			if state == "converged" {
				sawConverged = true
			} else {
				p.WarmReconvergeRequests++
			}
		}
	}
	if !sawConverged {
		return nil, errors.New("selfbench federation: re-pinned fingerprint never served converged on the survivor")
	}
	stA, _ = sA.ClusterStats()
	p.Failovers = stA.Failovers
	for _, peer := range stA.Peers {
		p.PeerBreakerTrips += peer.Trips
	}
	return p, nil
}

// shardSweep returns the shard counts to measure: 1, 2, 4, and the
// GOMAXPROCS-derived default, deduplicated and ascending.
func shardSweep() []int {
	counts := []int{1, 2, 4}
	auto := runtime.GOMAXPROCS(0)
	seen := map[int]bool{}
	out := []int{}
	for _, c := range append(counts, auto) {
		if c >= 1 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func benchShardCount(cfg apq.ServerConfig, queries, n int) (shardPoint, int, error) {
	pt := shardPoint{Shards: cfg.Shards}
	s, err := apq.NewServer(cfg)
	if err != nil {
		return pt, 0, err
	}
	defer s.Close()
	h := s.Handler()

	serve := func(body string) (map[string]any, error) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte(body)))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("selfbench: status %d: %s", rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			return nil, err
		}
		return out, nil
	}

	// The workload: distinct select_sum predicates over lineitem — distinct
	// fingerprints, so the pool spreads them across shards (§4.1's
	// micro-benchmark shape). l_quantity is uniform on [1,50], so hi=2+i
	// gives the paper-typical few-percent selectivities (4%—~20%): the
	// scan dominates, result materialization stays small.
	adaptive := make([]string, queries)
	serial := make([]string, queries)
	for i := range adaptive {
		hi := 2 + i
		spec := fmt.Sprintf(`{"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":%d}`, hi)
		adaptive[i] = spec + `}`
		serial[i] = spec + `,"mode":"serial"}`
	}

	// Warm every query's session to convergence; the request count is the
	// amortization cost of the adaptive phase — and the drive itself is the
	// measured cold path (every request mutates and recompiles).
	var mWarm0, mWarm1 runtime.MemStats
	runtime.ReadMemStats(&mWarm0)
	warmStart := time.Now()
	var warmVirt float64
	for i, body := range adaptive {
		converged := false
		for r := 0; r < 4000 && !converged; r++ {
			resp, err := serve(body)
			if err != nil {
				return pt, 0, err
			}
			pt.WarmupRequests++
			lat, _ := resp["latency_ns"].(float64)
			warmVirt += lat
			converged = resp["state"] == "converged"
		}
		if !converged {
			return pt, 0, fmt.Errorf("selfbench: query %d did not converge within 4000 warmup requests", i)
		}
	}
	warmWall := time.Since(warmStart)
	runtime.ReadMemStats(&mWarm1)
	pt.Warmup = benchPhase{
		Requests:          pt.WarmupRequests,
		WallMs:            float64(warmWall.Microseconds()) / 1e3,
		ThroughputRPS:     float64(pt.WarmupRequests) / warmWall.Seconds(),
		VirtualMeanNs:     warmVirt / float64(pt.WarmupRequests),
		AllocsPerRequest:  float64(mWarm1.Mallocs-mWarm0.Mallocs) / float64(pt.WarmupRequests),
		AllocKBPerRequest: float64(mWarm1.TotalAlloc-mWarm0.TotalAlloc) / float64(pt.WarmupRequests) / 1024,
	}

	clients := 2 * cfg.Shards
	if clients < 4 {
		clients = 4
	}
	measure := func(bodies []string) (benchPhase, error) {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			virt     float64
			served   int
			firstErr error
		)
		perClient := n / clients
		if perClient < 1 {
			perClient = 1 // never a zero-request phase (NaN means and 0/0 rps)
		}
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				localVirt := 0.0
				for i := 0; i < perClient; i++ {
					r, err := serve(bodies[(c+i*clients)%len(bodies)])
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					lat, _ := r["latency_ns"].(float64)
					localVirt += lat
				}
				mu.Lock()
				virt += localVirt
				served += perClient
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		if firstErr != nil {
			return benchPhase{}, firstErr
		}
		return benchPhase{
			Requests:          served,
			WallMs:            float64(wall.Microseconds()) / 1e3,
			ThroughputRPS:     float64(served) / wall.Seconds(),
			VirtualMeanNs:     virt / float64(served),
			AllocsPerRequest:  float64(m1.Mallocs-m0.Mallocs) / float64(served),
			AllocKBPerRequest: float64(m1.TotalAlloc-m0.TotalAlloc) / float64(served) / 1024,
		}, nil
	}

	// Best-of-2 per phase: wall-clock on a shared host is noisy, and the
	// fastest observed run is the least-disturbed estimate.
	best := func(bodies []string) (benchPhase, error) {
		a, err := measure(bodies)
		if err != nil {
			return a, err
		}
		b, err := measure(bodies)
		if err != nil {
			return b, err
		}
		if b.ThroughputRPS > a.ThroughputRPS {
			return b, nil
		}
		return a, nil
	}
	if pt.Hot, err = best(adaptive); err != nil {
		return pt, clients, err
	}
	if pt.ColdSerial, err = best(serial); err != nil {
		return pt, clients, err
	}
	if pt.ColdSerial.ThroughputRPS > 0 {
		pt.HotOverCold = pt.Hot.ThroughputRPS / pt.ColdSerial.ThroughputRPS
	}
	if pt.Hot.VirtualMeanNs > 0 {
		pt.VirtualSpeedup = pt.ColdSerial.VirtualMeanNs / pt.Hot.VirtualMeanNs
	}
	return pt, clients, nil
}

// simScenario is one -simbench measurement: the same recorded scenario
// played on the optimized event core and on the preserved seed core.
type simScenario struct {
	Name        string  `json:"name"`
	Machine     string  `json:"machine"`
	Tasks       int     `json:"tasks"`
	OptimizedMs float64 `json:"optimized_ms"`
	ReferenceMs float64 `json:"reference_ms"`
	// Speedup is reference over optimized wall time (same bit-identical
	// virtual timeline on both, by the golden test).
	Speedup float64 `json:"speedup"`
}

type simbenchReport struct {
	HostCPUs  int           `json:"host_cpus"`
	Rounds    int           `json:"rounds"`
	Scenarios []simScenario `json:"scenarios"`
}

// runSimbench plays pinned-seed scenarios on both event cores and reports
// the minimum wall time over rounds (the least-noise estimate). Recorded as
// BENCH_sim.json so the event core's perf trajectory is tracked PR-over-PR.
func runSimbench(rounds int) error {
	if rounds < 1 {
		rounds = 1
	}
	cases := []struct {
		name string
		mach sim.Config
		scen sim.ScenarioConfig
	}{
		{"two-socket-32t", sim.TwoSocket(),
			sim.ScenarioConfig{Seed: 1, Jobs: 4, Roots: 400, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.6, Budgets: true}},
		{"four-socket-96t", sim.FourSocket(),
			sim.ScenarioConfig{Seed: 1, Jobs: 4, Roots: 400, MaxChain: 3, MaxFanout: 2, MemHeavy: 0.6, Budgets: true}},
		{"four-socket-96t-singlequery", sim.FourSocket(),
			sim.ScenarioConfig{Seed: 2, Jobs: 1, Roots: 96, MaxChain: 4, MaxFanout: 2, MemHeavy: 0.5}},
	}
	rep := simbenchReport{HostCPUs: runtime.NumCPU(), Rounds: rounds}
	for _, tc := range cases {
		sc := sim.GenScenario(tc.name, tc.scen, tc.mach)
		optNs, refNs := int64(1<<62), int64(1<<62)
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			sc.Play(sim.NewMachine(tc.mach))
			if d := time.Since(t0).Nanoseconds(); d < optNs {
				optNs = d
			}
			t0 = time.Now()
			sc.Play(sim.NewReference(tc.mach))
			if d := time.Since(t0).Nanoseconds(); d < refNs {
				refNs = d
			}
		}
		rep.Scenarios = append(rep.Scenarios, simScenario{
			Name:        tc.name,
			Machine:     tc.mach.Name,
			Tasks:       sc.NumTasks(),
			OptimizedMs: float64(optNs) / 1e6,
			ReferenceMs: float64(refNs) / 1e6,
			Speedup:     float64(refNs) / float64(optNs),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
