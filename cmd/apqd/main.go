// Command apqd is the adaptive-parallelization query-service daemon: it
// loads a benchmark database onto a simulated multi-core machine and serves
// queries over HTTP/JSON, keeping adaptive state alive between requests.
// Repeated submissions of the same query keep stepping its convergence
// algorithm (each request is one adaptive run), so a cached query's latency
// drops request-over-request until the global-minimum plan is found.
//
// Endpoints:
//
//	POST /query                 {"query":6} | {"query":6,"mode":"serial"} |
//	                            {"select_sum":{"table":"lineitem","column":"l_quantity","lo":10,"hi":500}}
//	GET  /sessions              live plan-cache sessions
//	GET  /sessions/{id}/trace   per-run convergence trace (Figure 18)
//	GET  /stats                 server, cache, and admission counters
//	GET  /healthz               liveness
//
// Usage:
//
//	go run ./cmd/apqd -addr :8080 -bench tpch -sf 1 -machine 2s -admission
//	go run ./cmd/apqd -selfbench             # serve-path benchmark, JSON to stdout
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain before the engine run-loop stops.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	apq "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	bench := flag.String("bench", "tpch", "benchmark database to load: tpch or tpcds")
	sf := flag.Float64("sf", 1, "scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	machine := flag.String("machine", "2s", "machine config: 2s (2-socket/32HT) or 4s (4-socket/96HT)")
	admission := flag.Bool("admission", true, "apply Vectorwise-style admission control to concurrent clients")
	cacheSize := flag.Int("cache", 0, "max live plan-cache sessions (0 = unlimited)")
	noise := flag.Bool("noise", false, "enable the OS-noise model")
	selfbench := flag.Bool("selfbench", false, "run the serve-path benchmark and print JSON (no listener)")
	benchQuery := flag.Int("selfbench-query", 6, "query number for -selfbench")
	benchN := flag.Int("selfbench-n", 200, "measured requests per phase for -selfbench")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var m apq.Machine
	switch *machine {
	case "2s":
		m = apq.TwoSocketMachine()
	case "4s":
		m = apq.FourSocketMachine()
	default:
		log.Fatalf("unknown machine %q (want 2s or 4s)", *machine)
	}

	var db *apq.DB
	switch *bench {
	case "tpch":
		db = apq.LoadTPCH(*sf, *seed)
	case "tpcds":
		db = apq.LoadTPCDS(*sf, *seed)
	default:
		log.Fatalf("unknown benchmark %q (want tpch or tpcds)", *bench)
	}

	cfg := apq.ServerConfig{
		DB:         db,
		Machine:    m,
		DBIdentity: apq.DBIdentity(*bench, *sf, *seed),
		Benchmark:  *bench,
		Admission:  *admission,
		CacheSize:  *cacheSize,
	}
	if *noise {
		cfg.EngineOptions = append(cfg.EngineOptions, apq.WithNoise(apq.DefaultNoise()), apq.WithSeed(*seed))
	}

	if *selfbench {
		if err := runSelfbench(cfg, *bench, *benchQuery, *benchN); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("apqd: serving %s sf=%g on %s (machine %s, admission %v)",
		*bench, *sf, *addr, *machine, *admission)
	if err := apq.Serve(ctx, *addr, cfg); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	log.Print("apqd: shut down")
}

// benchPhase is one measured serving regime.
type benchPhase struct {
	Requests        int     `json:"requests"`
	WallMs          float64 `json:"wall_ms"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	VirtualMeanNs   float64 `json:"virtual_mean_ns"`
	VirtualFirstNs  float64 `json:"virtual_first_ns"`
	VirtualFinalNs  float64 `json:"virtual_final_ns"`
	ConvergenceRuns int     `json:"convergence_runs,omitempty"`
}

// benchReport is the -selfbench output recorded as BENCH_serve.json: the
// serving benchmark comparing repeated same-query submissions (the plan
// cache converges, then serves the learned plan) against cold serial
// executions of the same query.
type benchReport struct {
	Benchmark   string     `json:"benchmark"`
	Query       string     `json:"query"`
	DBIdentity  string     `json:"db_identity"`
	Cores       int        `json:"logical_cores"`
	HotRepeated benchPhase `json:"hot_repeated"`
	ColdSerial  benchPhase `json:"cold_serial"`
	// VirtualSpeedup is cold mean latency over hot mean latency: the win
	// from keeping converging sessions alive between requests.
	VirtualSpeedup float64 `json:"virtual_speedup"`
}

func runSelfbench(cfg apq.ServerConfig, bench string, query, n int) error {
	s, err := apq.NewServer(cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	serve := func(body string) (map[string]any, error) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte(body)))
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("selfbench: status %d: %s", rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			return nil, err
		}
		return out, nil
	}
	num := func(r map[string]any, key string) float64 {
		v, _ := r[key].(float64)
		return v
	}

	adaptive := fmt.Sprintf(`{"query":%d}`, query)
	serial := fmt.Sprintf(`{"query":%d,"mode":"serial"}`, query)

	// Warm the cache to convergence; the warmup run count is the
	// amortization cost of the adaptive phase.
	convRuns := 0
	converged := false
	for i := 0; i < 4000 && !converged; i++ {
		r, err := serve(adaptive)
		if err != nil {
			return err
		}
		convRuns = int(num(r, "run")) + 1
		converged = r["state"] == "converged"
	}
	if !converged {
		return fmt.Errorf("selfbench: session did not converge within %d warmup requests — the hot phase would be mislabeled", 4000)
	}

	measure := func(body string) (benchPhase, error) {
		var p benchPhase
		start := time.Now()
		var virt, first, final float64
		for i := 0; i < n; i++ {
			r, err := serve(body)
			if err != nil {
				return p, err
			}
			lat := num(r, "latency_ns")
			virt += lat
			if i == 0 {
				first = lat
			}
			final = lat
		}
		wall := time.Since(start)
		p = benchPhase{
			Requests:       n,
			WallMs:         float64(wall.Microseconds()) / 1e3,
			ThroughputRPS:  float64(n) / wall.Seconds(),
			VirtualMeanNs:  virt / float64(n),
			VirtualFirstNs: first,
			VirtualFinalNs: final,
		}
		return p, nil
	}

	rep := benchReport{
		Benchmark:  bench,
		Query:      fmt.Sprintf("q%d", query),
		DBIdentity: cfg.DBIdentity,
		Cores:      cfg.Machine.LogicalCores(),
	}
	if rep.HotRepeated, err = measure(adaptive); err != nil {
		return err
	}
	rep.HotRepeated.ConvergenceRuns = convRuns
	if rep.ColdSerial, err = measure(serial); err != nil {
		return err
	}
	if rep.HotRepeated.VirtualMeanNs > 0 {
		rep.VirtualSpeedup = rep.ColdSerial.VirtualMeanNs / rep.HotRepeated.VirtualMeanNs
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
