package main_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestApqdSmoke(t *testing.T) {
	bin := cmdtest.Build(t, "repro/cmd/apqd")

	// -selfbench exercises the full serve path (shard sweep) without
	// binding a port. Keep the workload tiny: 2 queries, 20 requests.
	out, code := cmdtest.Run(t, bin, "-selfbench", "-sf", "0.2", "-selfbench-n", "20", "-selfbench-queries", "2")
	if code != 0 {
		t.Fatalf("-selfbench exited %d:\n%s", code, out)
	}
	for _, want := range []string{`"sweep"`, `"hot_adaptive"`, `"cold_serial"`, `"virtual_speedup"`, `"hot_beats_cold_at_shards"`, `"multi_tenant"`, `"tenant-a"`, `"tenant-b"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("selfbench output missing %s:\n%s", want, out)
		}
	}
	var rep struct {
		Sweep []struct {
			Shards int `json:"shards"`
			Hot    struct {
				Requests int `json:"requests"`
			} `json:"hot_adaptive"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("selfbench output is not JSON: %v\n%s", err, out)
	}
	if len(rep.Sweep) < 2 || rep.Sweep[0].Shards != 1 || rep.Sweep[1].Shards != 2 {
		t.Fatalf("sweep must cover shard counts starting 1,2: %s", out)
	}

	// -simbench compares the optimized event core against the preserved
	// seed core on pinned scenarios.
	out, code = cmdtest.Run(t, bin, "-simbench", "-simbench-rounds", "1")
	if code != 0 {
		t.Fatalf("-simbench exited %d:\n%s", code, out)
	}
	for _, want := range []string{`"scenarios"`, `"optimized_ms"`, `"reference_ms"`, `"four-socket-96t"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("simbench output missing %s:\n%s", want, out)
		}
	}

	for _, args := range [][]string{
		{"-bench", "nosuchbench"},
		{"-machine", "9s"},
		{"-definitely-not-a-flag"},
		{"-selfbench", "unexpected-positional"},
	} {
		if out, code := cmdtest.Run(t, bin, args...); code == 0 {
			t.Fatalf("%v exited 0, want non-zero:\n%s", args, out)
		}
	}

	// Malformed repeatable flags must exit non-zero with a diagnostic that
	// names the flag and quotes the whole offending value — with several
	// -tenant/-fault/-peer flags on one command line, "invalid value" alone
	// doesn't say which one broke.
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-tenant", "missing-spec"}, `bad -tenant value "missing-spec"`},
		{[]string{"-tenant", "acme=tpch:notanumber:42"}, `bad -tenant value "acme=tpch:notanumber:42"`},
		{[]string{"-tenant", "acme=tpch:1:42:extra"}, `bad -tenant value "acme=tpch:1:42:extra"`},
		{[]string{"-fault", "no-at-sign"}, `bad -fault value "no-at-sign"`},
		{[]string{"-fault", "meteor@5e9"}, `bad -fault value "meteor@5e9"`},
		{[]string{"-fault", "throttle@5e9:factor=fast"}, `bad -fault value "throttle@5e9:factor=fast"`},
		{[]string{"-node", "a", "-peer", "nohost"}, `bad -peer value "nohost"`},
		{[]string{"-node", "a", "-peer", "b=127.0.0.1:8081"}, `bad -peer value "b=127.0.0.1:8081"`},
		{[]string{"-node", "a", "-peer", "b=http://x:1", "-peer", "b=http://y:2"}, `bad -peer value "b=http://y:2"`},
		{[]string{"-peer", "b=http://x:1"}, "-peer requires -node"},
	} {
		out, code := cmdtest.Run(t, bin, tc.args...)
		if code == 0 {
			t.Fatalf("%v exited 0, want non-zero:\n%s", tc.args, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%v diagnostic missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}
