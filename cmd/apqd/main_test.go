package main_test

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestApqdSmoke(t *testing.T) {
	bin := cmdtest.Build(t, "repro/cmd/apqd")

	// -selfbench exercises the full serve path without binding a port.
	out, code := cmdtest.Run(t, bin, "-selfbench", "-sf", "0.2", "-selfbench-n", "20")
	if code != 0 {
		t.Fatalf("-selfbench exited %d:\n%s", code, out)
	}
	for _, want := range []string{`"hot_repeated"`, `"cold_serial"`, `"virtual_speedup"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("selfbench output missing %s:\n%s", want, out)
		}
	}

	for _, args := range [][]string{
		{"-bench", "nosuchbench"},
		{"-machine", "9s"},
		{"-definitely-not-a-flag"},
		{"-selfbench", "unexpected-positional"},
	} {
		if out, code := cmdtest.Run(t, bin, args...); code == 0 {
			t.Fatalf("%v exited 0, want non-zero:\n%s", args, out)
		}
	}
}
