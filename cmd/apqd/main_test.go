package main_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestApqdSmoke(t *testing.T) {
	bin := cmdtest.Build(t, "repro/cmd/apqd")

	// -selfbench exercises the full serve path (shard sweep) without
	// binding a port. Keep the workload tiny: 2 queries, 20 requests.
	out, code := cmdtest.Run(t, bin, "-selfbench", "-sf", "0.2", "-selfbench-n", "20", "-selfbench-queries", "2")
	if code != 0 {
		t.Fatalf("-selfbench exited %d:\n%s", code, out)
	}
	for _, want := range []string{`"sweep"`, `"hot_adaptive"`, `"cold_serial"`, `"virtual_speedup"`, `"hot_beats_cold_at_shards"`, `"multi_tenant"`, `"tenant-a"`, `"tenant-b"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("selfbench output missing %s:\n%s", want, out)
		}
	}
	var rep struct {
		Sweep []struct {
			Shards int `json:"shards"`
			Hot    struct {
				Requests int `json:"requests"`
			} `json:"hot_adaptive"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("selfbench output is not JSON: %v\n%s", err, out)
	}
	if len(rep.Sweep) < 2 || rep.Sweep[0].Shards != 1 || rep.Sweep[1].Shards != 2 {
		t.Fatalf("sweep must cover shard counts starting 1,2: %s", out)
	}

	// -simbench compares the optimized event core against the preserved
	// seed core on pinned scenarios.
	out, code = cmdtest.Run(t, bin, "-simbench", "-simbench-rounds", "1")
	if code != 0 {
		t.Fatalf("-simbench exited %d:\n%s", code, out)
	}
	for _, want := range []string{`"scenarios"`, `"optimized_ms"`, `"reference_ms"`, `"four-socket-96t"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("simbench output missing %s:\n%s", want, out)
		}
	}

	for _, args := range [][]string{
		{"-bench", "nosuchbench"},
		{"-machine", "9s"},
		{"-definitely-not-a-flag"},
		{"-selfbench", "unexpected-positional"},
		{"-tenant", "missing-spec"},
		{"-tenant", "acme=tpch:notanumber:42"},
		{"-tenant", "acme=tpch:1:42:extra"},
	} {
		if out, code := cmdtest.Run(t, bin, args...); code == 0 {
			t.Fatalf("%v exited 0, want non-zero:\n%s", args, out)
		}
	}
}
