package main_test

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestExperimentsSmoke(t *testing.T) {
	bin := cmdtest.Build(t, "repro/cmd/experiments")

	out, code := cmdtest.Run(t, bin, "-list")
	if code != 0 || !strings.Contains(out, "table5") {
		t.Fatalf("-list exited %d:\n%s", code, out)
	}

	out, code = cmdtest.Run(t, bin, "-only", "table4")
	if code != 0 || !strings.Contains(out, "table4") {
		t.Fatalf("-only table4 exited %d:\n%s", code, out)
	}

	// A trailing comma is harmless, not an unknown experiment.
	out, code = cmdtest.Run(t, bin, "-only", "table4,")
	if code != 0 || !strings.Contains(out, "table4") {
		t.Fatalf("-only table4, exited %d:\n%s", code, out)
	}

	for _, args := range [][]string{
		{"-only", "fig99"},
		{"-only", " "}, // selects nothing: error, not a silent full run
		{"-definitely-not-a-flag"},
	} {
		if out, code := cmdtest.Run(t, bin, args...); code == 0 {
			t.Fatalf("%v exited 0, want non-zero:\n%s", args, out)
		}
	}
}
