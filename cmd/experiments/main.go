// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated machines.
//
// Usage:
//
//	go run ./cmd/experiments            # everything, quick preset
//	go run ./cmd/experiments -full      # larger data, full convergence budget
//	go run ./cmd/experiments -only fig12,table5
//
// Experiment ids: table1 table2 table3 table4 table5 fig1 fig8 fig11 fig12
// fig13 fig14 fig15 fig16 fig17 fig18 (table5 includes figures 19/20).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

type runner struct {
	id  string
	run func(experiments.Scale) (fmt.Stringer, error)
}

// tableResult adapts *experiments.Table to fmt.Stringer.
type tableResult struct{ t *experiments.Table }

func (r tableResult) String() string { return r.t.Format() }

type table5Result struct{ r *experiments.Table5Result }

func (r table5Result) String() string {
	return r.r.Table.Format() + "\n" + r.r.APTomograph + "\n" + r.r.HPTomograph
}

func wrap(f func(experiments.Scale) (*experiments.Table, error)) func(experiments.Scale) (fmt.Stringer, error) {
	return func(s experiments.Scale) (fmt.Stringer, error) {
		t, err := f(s)
		if err != nil {
			return nil, err
		}
		return tableResult{t}, nil
	}
}

func main() {
	full := flag.Bool("full", false, "use the larger, paper-shaped preset")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	all := []runner{
		{"table1", wrap(experiments.Table1)},
		{"table4", wrap(experiments.Table4)},
		{"fig1", wrap(experiments.Figure1)},
		{"fig8", wrap(experiments.Figure8)},
		{"fig11", wrap(experiments.Figure11)},
		{"fig12", wrap(experiments.Figure12)},
		{"fig13", wrap(experiments.Figure13)},
		{"fig14", wrap(experiments.Figure14)},
		{"table2", wrap(experiments.Table2)},
		{"fig15", wrap(experiments.Figure15)},
		{"table3", wrap(experiments.Table3)},
		{"fig16", wrap(experiments.Figure16)},
		{"fig17", wrap(experiments.Figure17)},
		{"fig18", wrap(experiments.Figure18)},
		{"table5", func(s experiments.Scale) (fmt.Stringer, error) {
			r, err := experiments.Table5(s)
			if err != nil {
				return nil, err
			}
			return table5Result{r}, nil
		}},
	}

	if *list {
		for _, r := range all {
			fmt.Println(r.id)
		}
		return
	}

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}

	known := map[string]bool{}
	for _, r := range all {
		known[r.id] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			want[id] = true
		}
		if len(want) == 0 {
			fmt.Fprintf(os.Stderr, "-only %q selects no experiments (use -list)\n", *only)
			os.Exit(1)
		}
	}

	for _, r := range all {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		start := time.Now()
		res, err := r.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s (%s preset, %.1fs wall) ---\n%s\n", r.id, scale.Name,
			time.Since(start).Seconds(), res)
	}
}
