// Command apshell is a small inspection tool for the engine: it loads a
// benchmark database, runs or adapts a query, and dumps plans, convergence
// traces, DOT graphs (Figure 7) and tomographs (Figures 19/20).
//
// Usage examples:
//
//	go run ./cmd/apshell -q q14 -dump          # serial plan, MAL-style text
//	go run ./cmd/apshell -q q14 -dot           # dataflow graph (Graphviz)
//	go run ./cmd/apshell -q q14 -hp -dump      # heuristic 32-way plan
//	go run ./cmd/apshell -q q6 -converge       # adaptive trace + best plan
//	go run ./cmd/apshell -q ds3 -tomograph     # per-core timeline
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	apq "repro"
)

func main() {
	qname := flag.String("q", "q6", "query: q4,q6,q8,q9,q13,q14,q17,q19,q22 or ds1..ds5")
	sf := flag.Float64("sf", 2, "scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	hp := flag.Bool("hp", false, "heuristically parallelize before other actions")
	dump := flag.Bool("dump", false, "print the plan (MAL-style)")
	dot := flag.Bool("dot", false, "print the plan's dataflow graph in DOT")
	converge := flag.Bool("converge", false, "run an adaptive session and print the trace")
	tomograph := flag.Bool("tomograph", false, "execute and print the per-core timeline")
	flag.Parse()

	var db *apq.DB
	var q *apq.Query
	name := strings.ToLower(*qname)
	switch {
	case strings.HasPrefix(name, "ds"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "ds"))
		if err != nil {
			log.Fatalf("bad query %q", name)
		}
		db = apq.LoadTPCDS(*sf, *seed)
		q = apq.TPCDSQuery(n)
	case strings.HasPrefix(name, "q"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "q"))
		if err != nil {
			log.Fatalf("bad query %q", name)
		}
		db = apq.LoadTPCH(*sf, *seed)
		q = apq.TPCHQuery(n)
	default:
		log.Fatalf("unknown query %q", name)
	}

	eng := apq.NewEngine(db, apq.TwoSocketMachine())
	if *hp {
		var err error
		q, err = eng.HeuristicPlan(q, 0)
		if err != nil {
			log.Fatal(err)
		}
	}

	did := false
	if *dump {
		did = true
		fmt.Print(q.String())
		st := q.Stats()
		fmt.Printf("# %d instructions, %d selects, %d joins, %d packs, DOP %d\n",
			st.Instrs, st.Selects, st.Joins, st.Packs, st.MaxDOP)
	}
	if *dot {
		did = true
		fmt.Print(q.Dot())
	}
	if *converge {
		did = true
		sess := eng.NewAdaptiveSession(q)
		rep, err := sess.Converge()
		if err != nil {
			log.Fatal(err)
		}
		for i, t := range rep.History {
			mark := ""
			if i == rep.GMERun {
				mark = "  <- global minimum"
			}
			fmt.Printf("run %3d: %10.3f ms%s\n", i, t/1e6, mark)
		}
		fmt.Printf("converged: %d runs, GME %.3f ms at run %d, speedup %.2fx, best DOP %d\n",
			rep.TotalRuns, rep.GMENs/1e6, rep.GMERun, rep.Speedup(), rep.BestPlan.MaxDOP())
		q = sess.BestQuery()
	}
	if *tomograph {
		did = true
		res, err := eng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Tomograph(96))
	}
	if !did {
		res, err := eng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("executed %s: %.3f ms, utilization %.1f%%, %d result values\n",
			name, res.MakespanNs()/1e6, res.Utilization()*100, len(res.Values))
	}
}
