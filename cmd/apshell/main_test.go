package main_test

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestApshellSmoke(t *testing.T) {
	bin := cmdtest.Build(t, "repro/cmd/apshell")

	out, code := cmdtest.Run(t, bin, "-q", "q6", "-sf", "0.2")
	if code != 0 {
		t.Fatalf("trivial invocation exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "executed q6") {
		t.Fatalf("unexpected output:\n%s", out)
	}

	out, code = cmdtest.Run(t, bin, "-q", "q6", "-sf", "0.2", "-dump")
	if code != 0 || !strings.Contains(out, "instructions") {
		t.Fatalf("-dump exited %d:\n%s", code, out)
	}

	for _, args := range [][]string{
		{"-q", "nosuchquery"},
		{"-q", "qx"},
		{"-q", "q999"}, // unimplemented query number
		{"-definitely-not-a-flag"},
	} {
		if out, code := cmdtest.Run(t, bin, args...); code == 0 {
			t.Fatalf("%v exited 0, want non-zero:\n%s", args, out)
		}
	}
}
