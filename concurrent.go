package apq

import (
	"repro/internal/cost"
	"repro/internal/vectorwise"
	"repro/internal/workload"
)

// Stats are latency statistics over virtual-time samples.
type Stats = workload.Stats

// ConcurrentResult aggregates a concurrent replay.
type ConcurrentResult = workload.ConcurrentResult

// ConcurrentOptions configures RunConcurrent.
type ConcurrentOptions struct {
	// Repeats is how many queries each client issues (default 1).
	Repeats int
	// Seed drives each client's query-mix choice.
	Seed int64
	// Vectorwise runs the mix under the comparator's cost calibration and
	// admission-control scheme (§4.2.4).
	Vectorwise bool
}

// RunConcurrent replays the query mix with the given number of concurrent
// clients, each issuing its next query as soon as the previous completes —
// the paper's concurrent-workload setup (§4.2.3).
func (e *Engine) RunConcurrent(clients int, mix []*Query, opts ConcurrentOptions) (*ConcurrentResult, error) {
	cfg := workload.ClientConfig{Repeats: opts.Repeats, Seed: opts.Seed}
	for _, q := range mix {
		cfg.Plans = append(cfg.Plans, q.p)
	}
	if opts.Vectorwise {
		params := vectorwise.Params()
		cfg.CostParams = &params
		cores := e.Machine().LogicalCores()
		cfg.MaxCores = func(client, active int) int {
			return vectorwise.AdmissionMaxCores(client, active, cores)
		}
	}
	return workload.RunConcurrent(e.inner, clients, cfg)
}

// SaturateCores floods the machine with CPU-bound background tasks until
// the virtual deadline — Figure 1's "0% CPU core idleness" condition.
// Subsequent Execute calls compete with the load.
func (e *Engine) SaturateCores(width int, taskNs, untilNs float64) {
	if width <= 0 {
		width = e.Machine().LogicalCores()
	}
	workload.SaturateCores(e.inner.Machine(), width, taskNs, untilNs)
}

// NowNs returns the engine's current virtual time.
func (e *Engine) NowNs() float64 { return e.inner.Machine().Now() }

// DefaultCostParams returns the MonetDB-style cost calibration.
func DefaultCostParams() cost.Params { return cost.Default() }

// VectorwiseCostParams returns the comparator calibration.
func VectorwiseCostParams() cost.Params { return cost.Vectorwise() }
