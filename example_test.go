package apq_test

import (
	"fmt"

	apq "repro"
)

// Example demonstrates the core adaptive-parallelization loop: a cached
// query is re-invoked, each invocation parallelizing its most expensive
// operator, until the convergence algorithm halts and the global-minimum
// plan is identified. Everything — data generation, the simulated machine,
// the adaptation — is deterministic, so this output is stable.
func Example() {
	db := apq.LoadTPCH(1, 42)
	eng := apq.NewEngine(db, apq.TwoSocketMachine())

	q := apq.TPCHQuery(6)
	serial, err := eng.Execute(q)
	if err != nil {
		panic(err)
	}
	rev, _ := serial.Scalar(0)

	sess := eng.NewAdaptiveSession(q,
		apq.WithConvergenceConfig(apq.DefaultConvergenceConfig(8)),
		apq.WithResultVerification())
	report, err := sess.Converge()
	if err != nil {
		panic(err)
	}
	again, err := eng.Execute(sess.BestQuery())
	if err != nil {
		panic(err)
	}

	fmt.Printf("revenue stable: %v\n", apq.ResultsEqual(serial, again))
	fmt.Printf("revenue positive: %v\n", rev > 0)
	fmt.Printf("parallel plan found: %v\n", sess.BestQuery().MaxDOP() > 1)
	fmt.Printf("faster than serial: %v\n", report.Speedup() > 1)
	// Output:
	// revenue stable: true
	// revenue positive: true
	// parallel plan found: true
	// faster than serial: true
}

// ExampleEngine_HeuristicPlan contrasts the static baseline with an
// adaptive plan on the same query: both must agree on results while using
// very different numbers of operators (the paper's Table 5).
func ExampleEngine_HeuristicPlan() {
	db := apq.LoadTPCH(1, 42)
	eng := apq.NewEngine(db, apq.TwoSocketMachine())
	q := apq.TPCHQuery(14)

	serial, _ := eng.Execute(q)
	hp, err := eng.HeuristicPlan(q, 0)
	if err != nil {
		panic(err)
	}
	hpRes, _ := eng.Execute(hp)

	fmt.Printf("results agree: %v\n", apq.ResultsEqual(serial, hpRes))
	fmt.Printf("static DOP: %d\n", hp.MaxDOP())
	fmt.Printf("more selects than serial: %v\n", hp.Stats().Selects > q.Stats().Selects)
	// Output:
	// results agree: true
	// static DOP: 32
	// more selects than serial: true
}
