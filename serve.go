package apq

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plancache"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
)

// FaultEvent is one scheduled machine fault for chaos testing: core loss,
// socket throttling, or interference (see the Kind constants).
type FaultEvent = sim.FaultEvent

// FaultPlan is a deterministic schedule of machine faults, applied in
// virtual-time order while the engine runs.
type FaultPlan = sim.FaultPlan

// FaultKind selects what a FaultEvent does to the simulated machine.
type FaultKind = sim.FaultKind

// Fault kinds for FaultEvent.Kind.
const (
	FaultCoreLoss       = sim.FaultCoreLoss
	FaultSocketThrottle = sim.FaultSocketThrottle
	FaultInterference   = sim.FaultInterference
)

// GenFaultPlan derives a deterministic random fault plan from a seed: n
// mixed-kind events spread over [0, horizonNs) of virtual time, never losing
// more than half the machine. Same arguments, same plan.
func GenFaultPlan(m Machine, seed int64, n int, horizonNs float64) FaultPlan {
	return sim.GenFaultPlan(m, seed, n, horizonNs)
}

// StalenessConfig arms re-convergence when a converged query's observed
// serving latency drifts out of band (e.g. after mid-run core loss).
type StalenessConfig = core.StalenessConfig

// DefaultStaleness is the recommended staleness arming: reopen convergence
// after 3 consecutive servings more than 35% off the converged expectation.
func DefaultStaleness() StalenessConfig { return core.DefaultStalenessConfig() }

// DriftConfig arms workload-drift detection: a converged query whose serve
// latency no longer matches the query mix it converged under is proactively
// reopened with a budget sized to the observed latency.
type DriftConfig = plancache.DriftConfig

// DefaultDrift is the recommended drift arming (35% band over an 8-serving
// window, tripped by 6 out-of-band servings when the tenant's query-mix
// share moved by at least 0.2).
func DefaultDrift() DriftConfig { return plancache.DefaultDriftConfig() }

// ResultContentType is the media type of the columnar APQRESULT reply body.
// A POST /query carrying it in Accept (or "results":true in the body)
// receives the full result values streamed column-at-a-time instead of the
// JSON metadata reply.
const ResultContentType = server.ResultContentType

// ResultPayload is a decoded APQRESULT reply: the JSON metadata the plain
// reply would have carried, plus the typed columnar result values.
type ResultPayload = server.ResultPayload

// DecodeResult parses an APQRESULT reply body — the typed client-side
// decoder for results-negotiated /query responses. Corrupt or truncated
// documents error; a successful decode is bit-identical to the engine's
// published result.
func DecodeResult(data []byte) (*ResultPayload, error) {
	return server.DecodeResult(data)
}

// TenantSpec describes a tenant added at runtime via Server.AddTenant or
// POST /admin/tenants. The server's tenant factory (built-in for NewServer:
// the benchmark generators) turns it into a live tenant.
type TenantSpec = server.TenantSpec

// MutationResponse reports one dataset mutation: the tenant's new epoch and
// how many of its sessions were reopened warm.
type MutationResponse = server.MutationResponse

// TenantLifecycleResponse reports one runtime tenant add or removal.
type TenantLifecycleResponse = server.TenantLifecycleResponse

// ServerConfig configures the apqd query service (see cmd/apqd). The daemon
// keeps adaptive-parallelization state alive between requests: each request
// against a cached query is one adaptive run, so latency drops
// request-over-request as the query's session converges.
type ServerConfig struct {
	// DB is the loaded database the service executes against.
	DB *DB
	// Machine is the simulated hardware.
	Machine Machine
	// DBIdentity names the dataset for query fingerprinting (e.g. the
	// output of DBIdentity). Fingerprints must change when the data does.
	DBIdentity string
	// Benchmark is "tpch" (default) or "tpcds": which named-query set this
	// daemon serves.
	Benchmark string
	// Admission enables Vectorwise-style admission control for concurrent
	// clients (VectorwiseAdmissionMaxCores, §4.2.4 of the paper).
	Admission bool
	// CacheSize bounds each shard's plan-session cache (0 = unlimited).
	// When full, least-recently-used sessions are evicted, converged ones
	// first.
	CacheSize int
	// Tenants are additional named datasets served over the same engine
	// shard pool. Each tenant generates its own database and catalog from
	// (Benchmark, SF, Seed) with its own DBIdentity; requests route by the
	// "tenant" body field or X-APQ-Tenant header. The primary DB above
	// remains reachable as tenant "default". Tenants share everything but
	// the data: machines, buffer recyclers, plan-schedule caches and
	// admission control are the pool's, and isolation holds because every
	// cache fingerprint incorporates the tenant's dataset identity.
	Tenants []TenantConfig
	// StorePath, when set, opens (or creates) the persistent convergence
	// store at that path: converged plan-sessions are written behind as
	// they converge and rehydrated at startup, so the first request after a
	// restart is served from the learned plan instead of re-adapting.
	// Records are identity-checked on rehydration — a record whose dataset
	// identity or cost calibration no longer matches is skipped, never
	// merged. The server owns the store and closes it on Close.
	StorePath string
	// Shards is the engine-pool width: independent engine replicas, each
	// with its own simulated machine behind its own engine-ownership lock
	// over the shared read-only catalog. Queries are pinned to shards by fingerprint hash,
	// so distinct queries execute concurrently on distinct host cores while
	// each session's convergence stays deterministic and single-threaded.
	// 0 derives the width from GOMAXPROCS; 1 reproduces the single-engine
	// daemon.
	Shards int
	// EngineOptions tune the engines (noise model, cost calibration, seed).
	EngineOptions []Option
	// Staleness arms serving-time staleness detection: a converged query
	// whose observed latency drifts out of band reopens its convergence and
	// re-adapts (the zero value disables it; DefaultStaleness() is the
	// recommended arming).
	Staleness StalenessConfig
	// Drift arms workload-drift detection: converged sessions whose serve
	// latency no longer matches the tenant query mix they converged under
	// are proactively reopened with a budget sized to the observed latency
	// (the zero value disables it; DefaultDrift() is the recommended
	// arming).
	Drift DriftConfig
	// Faults schedules deterministic machine faults on every shard's
	// simulated machine for chaos testing (empty = none). Faults land at
	// their virtual AtNs as the shard's engine clock advances.
	Faults FaultPlan
	// RequestTimeout bounds each request end to end, including its wait for
	// the shard's engine; expired requests abort with 503 (0 = no deadline).
	RequestTimeout time.Duration
	// MaxShardQueue bounds the waiting line in front of each shard; excess
	// arrivals are shed with 503 + Retry-After (0 = unbounded).
	MaxShardQueue int
	// BreakerFailures arms the per-shard health breaker: that many
	// consecutive failed or anomalously slow requests trip the shard into
	// degraded mode, serving last-converged plans without exploration until
	// BreakerCooldown elapses and a half-open probe succeeds (0 = disabled).
	BreakerFailures int
	// BreakerCooldown is how long a tripped shard stays degraded before it
	// probes at full fidelity again.
	BreakerCooldown time.Duration
	// SlowFactor defines "anomalously slow" for the breaker: an adaptive
	// request counting as a failure when its latency exceeds SlowFactor ×
	// the query's serial baseline (0 = only errors count).
	SlowFactor float64
	// Cluster federates this daemon with remote peers (nil = standalone).
	// When set, Handler() fronts the serve surface with the federation
	// coordinator: /query routes by fingerprint across the consistent-hash
	// ring, convergence records replicate to the peers write-behind, and a
	// dead peer's fingerprints fail over to survivors warm.
	Cluster *ClusterConfig
}

// ClusterPeer names one remote daemon of a federation.
type ClusterPeer = cluster.Peer

// ClusterStats is the GET /stats "cluster" block a federated daemon reports.
type ClusterStats = cluster.Stats

// ClusterConfig federates a daemon with its peers. All nodes must agree on
// the set of node names (ring ownership is computed independently on each
// node) and should run identically configured tenants — replicated records
// are identity-checked on arrival, so a mismatched peer skips them.
type ClusterConfig struct {
	// Self is this node's ring name (required; must differ from every peer).
	Self string
	// Peers is the initial remote membership; POST/DELETE /admin/peers
	// mutates it live.
	Peers []ClusterPeer
	// PeerTimeout bounds each remote attempt (0 = 2s).
	PeerTimeout time.Duration
	// Retries is how many times a failed remote attempt retries on the same
	// peer, with jittered exponential backoff, before failing over
	// (0 = 2, negative = never retry).
	Retries int
	// RetryBase is the first retry's backoff delay (0 = 25ms).
	RetryBase time.Duration
	// BreakerFailures opens a peer's breaker after that many consecutive
	// failures (0 = 3).
	BreakerFailures int
	// BreakerCooldown holds an open peer breaker before a half-open probe
	// is admitted, pre-jitter (0 = 2s).
	BreakerCooldown time.Duration
	// ProbeInterval is the background health-probe cadence that recovers
	// breaker-open peers (0 = 500ms, negative = disabled).
	ProbeInterval time.Duration
}

// TenantConfig declares one named tenant dataset for the query service.
type TenantConfig struct {
	// Name routes requests to this tenant. Required, unique, and not
	// "default" (the primary database's reserved name).
	Name string
	// Benchmark is the tenant's dataset generator and named-query set:
	// "tpch" (default) or "tpcds".
	Benchmark string
	// SF is the generator scale factor (0 = 1).
	SF float64
	// Seed is the generator seed, part of the tenant's dataset identity.
	Seed int64
	// MaxSessions bounds the tenant's live cached plan-sessions on each
	// shard (0 = unlimited). Over-quota tenants evict only their own
	// least-recently-used sessions, converged first.
	MaxSessions int
	// MaxInFlight bounds the tenant's concurrently executing requests
	// (0 = unlimited); excess requests fail fast with HTTP 429.
	MaxInFlight int
	// Epoch is the dataset's initial mutation epoch (0 = the dataset as
	// generated). Persisted convergence records carry the epoch they were
	// learned at; a record whose epoch no longer matches rehydrates as a
	// warm seed instead of being served converged.
	Epoch int64
}

// buildTenant generates a tenant's dataset and wraps it for the serving
// layer. It is both the NewServer path for statically configured tenants and
// the factory behind runtime POST /admin/tenants.
func buildTenant(t TenantConfig) (server.Tenant, error) {
	bench := t.Benchmark
	if bench == "" {
		bench = "tpch"
	}
	sf := t.SF
	if sf == 0 {
		sf = 1
	}
	var db *DB
	switch bench {
	case "tpch":
		db = LoadTPCH(sf, t.Seed)
	case "tpcds":
		db = LoadTPCDS(sf, t.Seed)
	default:
		return server.Tenant{}, fmt.Errorf("apq: tenant %q: unknown benchmark %q (want tpch or tpcds)", t.Name, bench)
	}
	return server.Tenant{
		Name:        t.Name,
		Catalog:     db.cat,
		DBIdentity:  DBIdentity(bench, sf, t.Seed),
		Benchmark:   bench,
		MaxSessions: t.MaxSessions,
		MaxInFlight: t.MaxInFlight,
		Epoch:       t.Epoch,
	}, nil
}

// Server is the query-service core: HTTP handlers over a pool of engine
// shards, each with its own plan-session cache and admission controller.
// Every single-threaded virtual-time engine is owned by its shard's
// engine-ownership lock, so the handler set is safe for concurrent clients
// while distinct queries execute concurrently on distinct shards.
type Server struct {
	inner     *server.Server
	st        *store.Store
	coord     *cluster.Coordinator
	closeOnce sync.Once
}

// NewServer creates a query service. Close it when done serving.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("apq: ServerConfig.DB is required")
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		return nil, fmt.Errorf("apq: ServerConfig.Shards %d invalid", cfg.Shards)
	}
	engines := make([]*exec.Engine, shards)
	for i := range engines {
		// Each shard replica owns its own simulated machine; the catalog
		// underneath is shared and read-only.
		engines[i] = NewEngine(cfg.DB, cfg.Machine, cfg.EngineOptions...).inner
	}
	// Tenant datasets are generated once and shared read-only by every
	// shard; requests resolve binds against their tenant's catalog while
	// executing on the shared pool.
	tenants := make([]server.Tenant, 0, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		tn, err := buildTenant(t)
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, tn)
	}
	var st *store.Store
	if cfg.StorePath != "" {
		var err error
		if st, err = store.Open(cfg.StorePath); err != nil {
			return nil, err
		}
	}
	scfg := server.Config{
		Engines:    engines,
		DBIdentity: cfg.DBIdentity,
		Benchmark:  cfg.Benchmark,
		Admission:  cfg.Admission,
		CacheSize:  cfg.CacheSize,
		Tenants:    tenants,
		Store:      st,
		Staleness:  cfg.Staleness,
		Drift:      cfg.Drift,
		TenantFactory: func(spec server.TenantSpec) (server.Tenant, error) {
			return buildTenant(TenantConfig{
				Name:        spec.Name,
				Benchmark:   spec.Benchmark,
				SF:          spec.SF,
				Seed:        spec.Seed,
				MaxSessions: spec.MaxSessions,
				MaxInFlight: spec.MaxInFlight,
			})
		},
		Faults:          cfg.Faults,
		RequestTimeout:  cfg.RequestTimeout,
		MaxShardQueue:   cfg.MaxShardQueue,
		BreakerFailures: cfg.BreakerFailures,
		BreakerCooldown: cfg.BreakerCooldown,
		SlowFactor:      cfg.SlowFactor,
	}
	// The coordinator wraps the serving core but the core's config hooks
	// must exist before server.New — relay through a pointer filled in once
	// the coordinator is up. Records converged before that (rehydration) are
	// covered by the replica-set sync pushed at peer join.
	var coordPtr atomic.Pointer[cluster.Coordinator]
	if cfg.Cluster != nil {
		scfg.OnRecord = func(rec store.Record) {
			if c := coordPtr.Load(); c != nil {
				c.Observe(rec)
			}
		}
		scfg.ClusterStats = func() any {
			if c := coordPtr.Load(); c != nil {
				return c.Stats()
			}
			return nil
		}
	}
	inner, err := server.New(scfg)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	var coord *cluster.Coordinator
	if cfg.Cluster != nil {
		coord, err = cluster.New(inner, cluster.Config{
			Self:            cfg.Cluster.Self,
			Peers:           cfg.Cluster.Peers,
			PeerTimeout:     cfg.Cluster.PeerTimeout,
			Retries:         cfg.Cluster.Retries,
			RetryBase:       cfg.Cluster.RetryBase,
			BreakerFailures: cfg.Cluster.BreakerFailures,
			BreakerCooldown: cfg.Cluster.BreakerCooldown,
			ProbeInterval:   cfg.Cluster.ProbeInterval,
		})
		if err != nil {
			inner.Close()
			if st != nil {
				st.Close()
			}
			return nil, err
		}
		coordPtr.Store(coord)
	}
	return &Server{inner: inner, st: st, coord: coord}, nil
}

// Shards reports the engine-pool width the server is running with.
func (s *Server) Shards() int { return s.inner.Shards() }

// InjectFault schedules a machine fault on one shard mid-run — the chaos
// entry point. The event takes effect at its virtual AtNs (past times mean
// immediately, at the start of the shard's next run).
func (s *Server) InjectFault(shard int, ev FaultEvent) error {
	return s.inner.InjectFault(shard, ev)
}

// Handler returns the HTTP handler tree: POST /query, GET /sessions,
// GET /sessions/{id}/trace, GET /stats, GET /healthz, plus the admin
// surface POST /admin/append, POST /admin/truncate, POST|DELETE
// /admin/tenants. A federated daemon (ServerConfig.Cluster) fronts the tree
// with the coordinator, adding POST /cluster/replicate and GET|POST|DELETE
// /admin/peers and routing /query across the ring.
func (s *Server) Handler() http.Handler {
	if s.coord != nil {
		return s.coord.Handler()
	}
	return s.inner.Handler()
}

// AddPeer joins a remote daemon to the federation at runtime (equivalent to
// POST /admin/peers). Errors when the server is not federated.
func (s *Server) AddPeer(name, url string) error {
	if s.coord == nil {
		return errors.New("apq: server is not federated (no ServerConfig.Cluster)")
	}
	return s.coord.AddPeer(name, url)
}

// RemovePeer detaches a peer from the federation at runtime (equivalent to
// DELETE /admin/peers?name=). Errors when the server is not federated.
func (s *Server) RemovePeer(name string) error {
	if s.coord == nil {
		return errors.New("apq: server is not federated (no ServerConfig.Cluster)")
	}
	return s.coord.RemovePeer(name)
}

// ClusterStats snapshots the federation coordinator; ok is false on a
// standalone daemon.
func (s *Server) ClusterStats() (stats ClusterStats, ok bool) {
	if s.coord == nil {
		return ClusterStats{}, false
	}
	return s.coord.Stats(), true
}

// AppendRows appends rows to one of a tenant's tables ("" = the default
// tenant) while the server keeps serving: the catalog is rebuilt
// copy-on-write, swapped in atomically across the shard pool, the tenant's
// dataset epoch is bumped, and the tenant's converged sessions reopen warm
// (seeded from their learned plans) instead of being evicted. Equivalent to
// POST /admin/append.
func (s *Server) AppendRows(tenant, table string, cols map[string]ColumnAppend) (MutationResponse, error) {
	return s.inner.AppendRows(tenant, table, cols)
}

// DeleteTail removes the last n rows of one of a tenant's tables, with the
// same epoch-bump and warm-reopen semantics as AppendRows. Equivalent to
// POST /admin/truncate.
func (s *Server) DeleteTail(tenant, table string, n int) (MutationResponse, error) {
	return s.inner.DeleteTail(tenant, table, n)
}

// AddTenant adds a tenant at runtime without restarting: its dataset is
// generated from the spec, quotas installed on every shard, and any matching
// convergence-store records rehydrated (epoch-mismatched ones as warm seeds).
// Equivalent to POST /admin/tenants.
func (s *Server) AddTenant(spec TenantSpec) (TenantLifecycleResponse, error) {
	return s.inner.AddTenant(spec)
}

// RemoveTenant drains a tenant with zero downtime: new traffic 404s, in-flight
// requests finish, converged sessions flush to the convergence store, and the
// tenant's plans and catalog are released. Equivalent to DELETE
// /admin/tenants?name=.
func (s *Server) RemoveTenant(name string) (TenantLifecycleResponse, error) {
	return s.inner.RemoveTenant(name)
}

// Close drains in-flight requests, retires the engine shards, flushes the
// write-behind persistence queue, and closes the convergence store (when
// one is configured). Idempotent: later calls are no-ops. Requests arriving
// afterwards fail with 503.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.coord != nil {
			// Federation machinery first: the replicator flushes its queue
			// against a still-serving pool of peers.
			s.coord.Close()
		}
		s.inner.Close()
		if s.st != nil {
			s.st.Close()
		}
	})
}

// StorePath returns the configured convergence-store path ("" = none).
func (s *Server) StorePath() string {
	if s.st == nil {
		return ""
	}
	return s.st.Path()
}

// Serve runs the query service on addr until ctx is cancelled, then shuts
// down gracefully (in-flight requests drain before the engine stops).
func Serve(ctx context.Context, addr string, cfg ServerConfig) error {
	s, err := NewServer(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	// Keep-alive tuning: idle client connections are retained for two
	// minutes so steady request streams skip TCP/TLS setup entirely (the
	// serving benchmark showed connection churn dominating small-query
	// latency), while ReadHeaderTimeout bounds slow-header clients so the
	// daemon cannot be wedged by half-open connections.
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shctx)
	case err := <-errc:
		return err
	}
}

// ExportPlans writes every record of the convergence store at storePath to
// a self-describing versioned export file at exportPath, atomically. The
// export is deterministic (records sorted by fingerprint), so identical
// stores export bit-identical files. It returns the record count.
func ExportPlans(storePath, exportPath string) (int, error) {
	st, err := store.Open(storePath)
	if err != nil {
		return 0, err
	}
	defer st.Close()
	return st.Export(exportPath)
}

// ImportPlans merges the records of an export file into the convergence
// store at storePath (created if missing). Records supersede same-fingerprint
// ones already present. A corrupt, foreign, or newer-versioned export file is
// rejected with an error before anything is written. It returns the record
// count imported.
func ImportPlans(storePath, importPath string) (int, error) {
	st, err := store.Open(storePath)
	if err != nil {
		return 0, err
	}
	n, err := st.Import(importPath)
	if err != nil {
		st.Close()
		return 0, err
	}
	return n, st.Close()
}

// DBIdentity renders the canonical dataset identity for the built-in
// generators: benchmark name, scale factor, and seed.
func DBIdentity(benchmark string, sf float64, seed int64) string {
	return fmt.Sprintf("%s:sf=%g:seed=%d", benchmark, sf, seed)
}

// FingerprintNamed fingerprints a named benchmark query (e.g. "tpch:q6")
// against a dataset identity — the plan-session cache key the service uses.
func FingerprintNamed(dbIdentity, name string) string {
	return plancache.Fingerprint(dbIdentity, name)
}

// FingerprintQuery fingerprints a builder-spec query by its plan structure
// against a dataset identity. Structurally identical plans fingerprint
// equal; any change to the plan (or the dataset) changes the key.
func FingerprintQuery(dbIdentity string, q *Query) string {
	return plancache.PlanFingerprint(dbIdentity, q.p)
}
