package apq

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/plancache"
	"repro/internal/server"
)

// ServerConfig configures the apqd query service (see cmd/apqd). The daemon
// keeps adaptive-parallelization state alive between requests: each request
// against a cached query is one adaptive run, so latency drops
// request-over-request as the query's session converges.
type ServerConfig struct {
	// DB is the loaded database the service executes against.
	DB *DB
	// Machine is the simulated hardware.
	Machine Machine
	// DBIdentity names the dataset for query fingerprinting (e.g. the
	// output of DBIdentity). Fingerprints must change when the data does.
	DBIdentity string
	// Benchmark is "tpch" (default) or "tpcds": which named-query set this
	// daemon serves.
	Benchmark string
	// Admission enables Vectorwise-style admission control for concurrent
	// clients (VectorwiseAdmissionMaxCores, §4.2.4 of the paper).
	Admission bool
	// CacheSize bounds the plan-session cache (0 = unlimited). When full,
	// least-recently-used sessions are evicted, converged ones first.
	CacheSize int
	// EngineOptions tune the engine (noise model, cost calibration, seed).
	EngineOptions []Option
}

// Server is the query-service core: HTTP handlers over one engine, one
// plan-session cache, and one admission controller. The single-threaded
// virtual-time engine is owned by the server's run-loop; all executions are
// serialized behind it, so the handler set is safe for concurrent clients.
type Server struct {
	inner *server.Server
}

// NewServer creates a query service. Close it to stop the engine run-loop.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("apq: ServerConfig.DB is required")
	}
	eng := NewEngine(cfg.DB, cfg.Machine, cfg.EngineOptions...)
	inner, err := server.New(server.Config{
		Engine:     eng.inner,
		DBIdentity: cfg.DBIdentity,
		Benchmark:  cfg.Benchmark,
		Admission:  cfg.Admission,
		CacheSize:  cfg.CacheSize,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// Handler returns the HTTP handler tree: POST /query, GET /sessions,
// GET /sessions/{id}/trace, GET /stats, GET /healthz.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// Close drains in-flight requests and stops the engine run-loop. Requests
// arriving afterwards fail with 503.
func (s *Server) Close() { s.inner.Close() }

// Serve runs the query service on addr until ctx is cancelled, then shuts
// down gracefully (in-flight requests drain before the engine stops).
func Serve(ctx context.Context, addr string, cfg ServerConfig) error {
	s, err := NewServer(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shctx)
	case err := <-errc:
		return err
	}
}

// DBIdentity renders the canonical dataset identity for the built-in
// generators: benchmark name, scale factor, and seed.
func DBIdentity(benchmark string, sf float64, seed int64) string {
	return fmt.Sprintf("%s:sf=%g:seed=%d", benchmark, sf, seed)
}

// FingerprintNamed fingerprints a named benchmark query (e.g. "tpch:q6")
// against a dataset identity — the plan-session cache key the service uses.
func FingerprintNamed(dbIdentity, name string) string {
	return plancache.Fingerprint(dbIdentity, name)
}

// FingerprintQuery fingerprints a builder-spec query by its plan structure
// against a dataset identity. Structurally identical plans fingerprint
// equal; any change to the plan (or the dataset) changes the key.
func FingerprintQuery(dbIdentity string, q *Query) string {
	return plancache.PlanFingerprint(dbIdentity, q.p)
}
