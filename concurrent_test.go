package apq_test

import (
	"testing"

	apq "repro"
)

// TestRunConcurrentVectorwise exercises the comparator path of
// RunConcurrent directly: the Vectorwise cost calibration plus the
// admission-control scheme of §4.2.4 (previously only covered indirectly
// through the experiment drivers).
func TestRunConcurrentVectorwise(t *testing.T) {
	db := apq.LoadTPCH(0.5, 42)
	mix := []*apq.Query{apq.TPCHQuery(6), apq.TPCHQuery(14)}

	newEngine := func() *apq.Engine { return apq.NewEngine(db, apq.TwoSocketMachine()) }

	// Single client: admission grants the full machine.
	solo, err := newEngine().RunConcurrent(1, mix, apq.ConcurrentOptions{
		Repeats: 2, Seed: 7, Vectorwise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Overall.N() != 2 {
		t.Fatalf("solo completed %d queries, want 2", solo.Overall.N())
	}

	// Heavy concurrency: every query must still complete, and mean latency
	// must degrade relative to the solo client — later clients run under
	// shrinking core budgets while competing for the machine.
	clients, repeats := 8, 3
	busy, err := newEngine().RunConcurrent(clients, mix, apq.ConcurrentOptions{
		Repeats: repeats, Seed: 7, Vectorwise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := busy.Overall.N(), clients*repeats; got != want {
		t.Fatalf("busy completed %d queries, want %d", got, want)
	}
	if len(busy.Outcomes) != clients*repeats {
		t.Fatalf("busy recorded %d outcomes, want %d", len(busy.Outcomes), clients*repeats)
	}
	if busy.Overall.Mean() <= solo.Overall.Mean() {
		t.Fatalf("mean latency under 8 clients (%.0fns) not worse than solo (%.0fns)",
			busy.Overall.Mean(), solo.Overall.Mean())
	}
	if busy.MakespanNs <= 0 {
		t.Fatal("busy makespan not positive")
	}
	for pi, st := range busy.PerPlan {
		if st.N() == 0 {
			t.Fatalf("plan %d has no samples", pi)
		}
		if st.Min() <= 0 || st.Max() < st.Min() || st.Percentile(95) < st.Median() {
			t.Fatalf("plan %d stats inconsistent: min %.0f max %.0f p50 %.0f p95 %.0f",
				pi, st.Min(), st.Max(), st.Median(), st.Percentile(95))
		}
	}
}

// TestVectorwiseAdmissionPolicy pins the admission-control scheme itself:
// the first client keeps the whole machine, later clients share what
// remains, degrading toward serial execution.
func TestVectorwiseAdmissionPolicy(t *testing.T) {
	cores := 32
	if got := apq.VectorwiseAdmissionMaxCores(0, 8, cores); got != cores {
		t.Fatalf("first client got %d cores, want %d", got, cores)
	}
	if got := apq.VectorwiseAdmissionMaxCores(3, 8, cores); got != cores/8 {
		t.Fatalf("later client got %d cores, want %d", got, cores/8)
	}
	if got := apq.VectorwiseAdmissionMaxCores(5, 64, cores); got != 1 {
		t.Fatalf("overloaded client got %d cores, want 1 (serial floor)", got)
	}
	if got := apq.VectorwiseAdmissionMaxCores(2, 1, cores); got != cores {
		t.Fatalf("sole active client got %d cores, want %d", got, cores)
	}
}
