package apq

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its experiment
// (shared implementation in internal/experiments, also used by
// cmd/experiments) and reports the headline quantities as custom metrics so
// `go test -bench . -benchmem` prints the same series the paper reports.
//
// Times are VIRTUAL milliseconds on the simulated Table 1 machines; compare
// shapes (who wins, ratios, crossovers) with the paper, not absolute values
// — see EXPERIMENTS.md for the recorded paper-vs-measured comparison.

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
)

func benchScale() experiments.Scale { return experiments.Quick() }

// parseMs pulls a milliseconds cell back out of a rendered experiment row.
func parseMs(cell string) float64 {
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTable1SystemConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 2 {
			b.Fatal("expected two machine configurations")
		}
	}
}

func BenchmarkFigure01DOPUnderConcurrency(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figure1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Row 0 is Q9: report its DOP-8 vs DOP-32 latencies.
	b.ReportMetric(parseMs(t.Rows[0][1]), "q9_dop8_ms")
	b.ReportMetric(parseMs(t.Rows[0][3]), "q9_dop32_ms")
	b.Log("\n" + t.Format())
}

func BenchmarkFigure08DynamicPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatal("expected 4 evolution steps")
		}
	}
}

func BenchmarkFigure11ConvergenceScenarios(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figure11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	first := parseMs(t.Rows[0][1])
	last := parseMs(t.Rows[len(t.Rows)-1][1])
	b.ReportMetric(first, "serial_ms")
	b.ReportMetric(last, "final_ms")
	b.ReportMetric(float64(len(t.Rows)), "runs")
	b.Log("\n" + t.Format())
}

func BenchmarkFigure12SkewedSelect(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figure12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Skew 50% row: static-8 vs dynamic.
	row := t.Rows[len(t.Rows)-1]
	b.ReportMetric(parseMs(row[1]), "static8_ms")
	b.ReportMetric(parseMs(row[2]), "steal128_ms")
	b.ReportMetric(parseMs(row[3]), "dynamic_ms")
	b.Log("\n" + t.Format())
}

func BenchmarkFigure13SkewDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 20 {
			b.Fatal("expected 20 histogram buckets")
		}
	}
}

func BenchmarkFigure14SelectConvergence(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figure14(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(parseMs(t.Rows[0][2]), "serial_ms")
	b.ReportMetric(parseMs(t.Rows[0][7]), "gme_ms")
	b.Log("\n" + t.Format())
}

func BenchmarkTable2SelectSpeedup(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Table2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(parseMs(t.Rows[2][1]), "ap_speedup_10gb_0pct")
	b.ReportMetric(parseMs(t.Rows[2][2]), "hp_speedup_10gb_0pct")
	b.Log("\n" + t.Format())
}

func BenchmarkFigure15JoinConvergence(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figure15(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(parseMs(t.Rows[0][1]), "serial_ms")
	b.ReportMetric(parseMs(t.Rows[0][6]), "gme_ms")
	b.Log("\n" + t.Format())
}

func BenchmarkTable3JoinSpeedup(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Table3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(parseMs(t.Rows[0][1]), "ap_speedup_spilled_inner")
	b.ReportMetric(parseMs(t.Rows[0][3]), "ap_speedup_l3_inner")
	b.Log("\n" + t.Format())
}

func BenchmarkTable4QueryClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 2 {
			b.Fatal("expected simple and complex classes")
		}
	}
}

func BenchmarkFigure16IsolatedConcurrent(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figure16(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Q14 row: HP vs AP vs VW isolated and concurrent.
	for _, row := range t.Rows {
		if row[0] == "Q14" {
			b.ReportMetric(parseMs(row[1]), "q14_hp_iso_ms")
			b.ReportMetric(parseMs(row[2]), "q14_ap_iso_ms")
			b.ReportMetric(parseMs(row[4]), "q14_hp_conc_ms")
			b.ReportMetric(parseMs(row[5]), "q14_ap_conc_ms")
		}
	}
	b.Log("\n" + t.Format())
}

func BenchmarkFigure17TPCDS(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figure17(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(parseMs(t.Rows[0][1]), "q1_hp_2s_ms")
	b.ReportMetric(parseMs(t.Rows[0][2]), "q1_ap_2s_ms")
	b.Log("\n" + t.Format())
}

func BenchmarkFigure18Robustness(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figure18(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(parseMs(t.Rows[0][1]), "q4_runs_inv1")
	b.ReportMetric(parseMs(t.Rows[0][2]), "q4_runs_inv2")
	b.Log("\n" + t.Format())
}

func BenchmarkTable5PlanStats(b *testing.B) {
	var r *experiments.Table5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(parseMs(r.Table.Rows[0][1]), "ap_selects")
	b.ReportMetric(parseMs(r.Table.Rows[0][2]), "hp_selects")
	b.ReportMetric(parseMs(r.Table.Rows[4][1]), "ap_util_pct")
	b.ReportMetric(parseMs(r.Table.Rows[4][2]), "hp_util_pct")
	b.Log("\n" + r.Table.Format() + "\n" + r.APTomograph + "\n" + r.HPTomograph)
}

// BenchmarkAblationSplitFactor measures the paper's §4.3 discussion ("the
// number of runs could be made much lower if more operators are introduced
// per invocation"): convergence runs and GME quality when each mutation
// splits the expensive operator 2-way vs 4-way.
func BenchmarkAblationSplitFactor(b *testing.B) {
	db := LoadTPCH(2, 11)
	for _, factor := range []int{2, 4} {
		b.Run("split"+strconv.Itoa(factor), func(b *testing.B) {
			var rep *ConvergenceReport
			for i := 0; i < b.N; i++ {
				eng := NewEngine(db, TwoSocketMachine())
				mc := DefaultMutationConfig()
				mc.SplitFactor = factor
				sess := eng.NewAdaptiveSession(TPCHQuery(6),
					WithMutationConfig(mc),
					WithConvergenceConfig(DefaultConvergenceConfig(16)))
				var err error
				rep, err = sess.Converge()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.TotalRuns), "runs")
			b.ReportMetric(float64(rep.GMERun), "gme_run")
			b.ReportMetric(rep.Speedup(), "speedup")
		})
	}
}

// BenchmarkAblationPackThreshold measures the exchange-union suppression
// threshold's effect (§2.3 plan explosion control): 15 (the paper's MAL
// parameter count) vs 33 (this implementation's default).
func BenchmarkAblationPackThreshold(b *testing.B) {
	db := LoadTPCDS(8, 11)
	for _, th := range []int{15, 33} {
		b.Run("threshold"+strconv.Itoa(th), func(b *testing.B) {
			var rep *ConvergenceReport
			for i := 0; i < b.N; i++ {
				eng := NewEngine(db, TwoSocketMachine())
				mc := DefaultMutationConfig()
				mc.PackInputThreshold = th
				sess := eng.NewAdaptiveSession(TPCDSQuery(5),
					WithMutationConfig(mc),
					WithConvergenceConfig(DefaultConvergenceConfig(16)))
				var err error
				rep, err = sess.Converge()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.TotalRuns), "runs")
			b.ReportMetric(rep.Speedup(), "speedup")
		})
	}
}
