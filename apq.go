// Package apq is an adaptive query parallelization engine for multi-core
// column stores — a from-scratch Go reproduction of Gawade & Kersten,
// "Adaptive query parallelization in multi-core column stores" (EDBT 2016).
//
// The library bundles a complete columnar execution stack: typed columnar
// storage with zero-copy range views, relational operators (select, hash
// join, tuple reconstruction, grouping, aggregation, sort, exchange union),
// MAL-like SSA dataflow plans, a deterministic discrete-event multi-core
// machine (sockets, SMT, shared memory bandwidth, NUMA, OS noise), dbgen-like
// TPC-H and skewed TPC-DS workload generators, and four parallelization
// engines:
//
//   - Adaptive parallelization (the paper's contribution): execution
//     feedback morphs a serial plan by parallelizing its most expensive
//     operator per invocation, under a credit/debit convergence algorithm.
//   - Heuristic parallelization (MonetDB-style static mitosis baseline).
//   - Work-stealing configuration (many small static partitions).
//   - A simulated Vectorwise comparator (exchange overhead + admission
//     control).
//
// Quickstart:
//
//	db := apq.LoadTPCH(1, 42)
//	eng := apq.NewEngine(db, apq.TwoSocketMachine())
//	q := apq.TPCHQuery(6)
//	sess := eng.NewAdaptiveSession(q)
//	report, err := sess.Converge()
//	// report.Speedup(), report.BestPlan, report.History ...
package apq

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpcds"
	"repro/internal/tpch"
	"repro/internal/vec"
)

// Machine describes the simulated multi-core hardware (see DESIGN.md §6 for
// calibration). Use TwoSocketMachine / FourSocketMachine for the paper's
// Table 1 configurations, or build a custom Machine directly.
type Machine = sim.Config

// NoiseConfig models OS interference (§3.3.3 of the paper).
type NoiseConfig = sim.NoiseConfig

// TwoSocketMachine mirrors the paper's 2-socket, 32-hyper-thread Xeon
// E5-2650 server.
func TwoSocketMachine() Machine { return sim.TwoSocket() }

// FourSocketMachine mirrors the paper's 4-socket, 96-hyper-thread Xeon
// E5-4657Lv2 server.
func FourSocketMachine() Machine { return sim.FourSocket() }

// TwoSocketAsymMachine is the two-socket machine with socket 1 power-capped
// to 0.7× — an asymmetric-NUMA regime where adaptive parallelization should
// learn a lopsided placement.
func TwoSocketAsymMachine() Machine { return sim.TwoSocketAsym() }

// FourSocketAsymMachine is the four-socket machine with a stepped clock
// gradient (1.0/0.9/0.75/0.6×) across packages.
func FourSocketAsymMachine() Machine { return sim.FourSocketAsym() }

// DefaultNoise returns the calibrated OS-noise model.
func DefaultNoise() NoiseConfig { return sim.DefaultNoise() }

// DB is a loaded database: a catalog of columnar tables.
type DB struct {
	cat *storage.Catalog
}

// Catalog exposes the underlying catalog for advanced integrations.
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// NewDB returns an empty database.
func NewDB() *DB { return &DB{cat: storage.NewCatalog()} }

// LoadTPCH generates the synthetic TPC-H subset at scale factor sf
// (SF1 ≈ 60k lineitem rows at the library's 1/100 scale).
func LoadTPCH(sf float64, seed int64) *DB {
	return &DB{cat: tpch.Generate(tpch.Config{SF: sf, Seed: seed})}
}

// LoadTPCDS generates the skewed TPC-DS-like star schema at scale factor sf.
func LoadTPCDS(sf float64, seed int64) *DB {
	return &DB{cat: tpcds.Generate(tpcds.Config{SF: sf, Seed: seed})}
}

// TableBuilder adds a custom table to a DB.
type TableBuilder struct {
	db  *DB
	t   *storage.Table
	err error
}

// AddTable starts building a table.
func (db *DB) AddTable(name string) *TableBuilder {
	return &TableBuilder{db: db, t: storage.NewTable(name)}
}

// Int64 attaches an int64 column (dates, decimals and keys are all int64).
func (b *TableBuilder) Int64(name string, vals []int64) *TableBuilder {
	if b.err == nil {
		b.err = b.t.AddColumn(storage.NewIntColumn(name, vals))
	}
	return b
}

// String attaches a dictionary-encoded string column.
func (b *TableBuilder) String(name string, vals []string) *TableBuilder {
	if b.err == nil {
		d := vec.NewDict()
		codes := make([]int64, len(vals))
		for i, s := range vals {
			codes[i] = d.Code(s)
		}
		b.err = b.t.AddColumn(storage.NewColumn(name, 0, vec.NewDictCoded(codes, d)))
	}
	return b
}

// Done registers the table with the database.
func (b *TableBuilder) Done() error {
	if b.err != nil {
		return b.err
	}
	return b.db.cat.Add(b.t)
}

// ColumnAppend carries the values appended to one column of a table: exactly
// one of Ints or Strs, matching the column's payload type.
type ColumnAppend = storage.ColumnAppend

// AppendRows returns a new DB in which table has the given rows appended.
// The mutation is copy-on-write: the receiver is unchanged, untouched tables
// are shared, and readers of the old DB keep seeing an immutable snapshot.
// cols must name every column of the table exactly once, all with the same
// strictly positive number of appended rows.
func (db *DB) AppendRows(table string, cols map[string]ColumnAppend) (*DB, error) {
	ncat, err := db.cat.AppendRows(table, cols)
	if err != nil {
		return nil, err
	}
	return &DB{cat: ncat}, nil
}

// DeleteTail returns a new DB in which table has its last n rows removed,
// copy-on-write like AppendRows.
func (db *DB) DeleteTail(table string, n int) (*DB, error) {
	ncat, err := db.cat.DeleteTail(table, n)
	if err != nil {
		return nil, err
	}
	return &DB{cat: ncat}, nil
}

// Query wraps an executable plan.
type Query struct {
	p *plan.Plan
}

// Plan exposes the underlying plan (read-only use: printing, stats).
func (q *Query) Plan() *plan.Plan { return q.p }

// String renders the plan in MAL-flavoured text.
func (q *Query) String() string { return q.p.String() }

// Dot renders the plan's dataflow graph in Graphviz format (Figure 7).
func (q *Query) Dot() string { return q.p.Dot() }

// Stats summarizes the plan (Table 5 quantities).
func (q *Query) Stats() PlanStats {
	return PlanStats{
		Selects: q.p.CountOps(plan.OpSelect) + q.p.CountOps(plan.OpSelectCand) + q.p.CountOps(plan.OpLikeSelect),
		Joins:   q.p.CountOps(plan.OpJoin),
		Packs:   q.p.CountOps(plan.OpPack),
		Instrs:  len(q.p.Instrs),
		MaxDOP:  q.p.MaxDOP(),
	}
}

// PlanStats are the plan statistics the paper reports in Table 5.
type PlanStats struct {
	Selects, Joins, Packs, Instrs, MaxDOP int
}

// TPCHQuery returns the serial plan for the implemented TPC-H queries
// (4, 6, 8, 9, 13, 14, 17, 19, 22).
func TPCHQuery(n int) *Query { return &Query{p: tpch.MustQuery(n)} }

// TPCHQueryNumbers lists the implemented TPC-H queries.
func TPCHQueryNumbers() []int { return tpch.QueryNumbers() }

// TPCHClassification returns the paper's Table 4 simple/complex labels.
func TPCHClassification() map[int]string { return tpch.Classification() }

// TPCDSQuery returns the serial plan for TPC-DS templates 1–5.
func TPCDSQuery(n int) *Query { return &Query{p: tpcds.MustQuery(n)} }

// TPCDSQueryNumbers lists the implemented TPC-DS templates.
func TPCDSQueryNumbers() []int { return tpcds.QueryNumbers() }

// Q6Params parameterizes the TPC-H Q6 selectivity/size sweeps.
type Q6Params = tpch.Q6Params

// TPCHQ6 builds Q6 with explicit parameters (Figure 14 / Table 2 sweeps).
func TPCHQ6(p Q6Params) *Query { return &Query{p: tpch.Q6(p)} }

// Engine executes queries on one simulated machine.
type Engine struct {
	inner *exec.Engine
}

// Option configures an Engine.
type Option func(*engineConfig)

type engineConfig struct {
	machine Machine
	params  cost.Params
}

// WithNoise enables the OS-noise model with the given configuration.
func WithNoise(n NoiseConfig) Option {
	return func(c *engineConfig) { c.machine.Noise = n }
}

// WithSeed seeds the machine's noise source.
func WithSeed(seed int64) Option {
	return func(c *engineConfig) { c.machine.Seed = seed }
}

// WithCostParams overrides the cost calibration.
func WithCostParams(p cost.Params) Option {
	return func(c *engineConfig) { c.params = p }
}

// NewEngine creates an engine for db on the given machine.
func NewEngine(db *DB, m Machine, opts ...Option) *Engine {
	cfg := engineConfig{machine: m, params: cost.Default()}
	for _, o := range opts {
		o(&cfg)
	}
	return &Engine{inner: exec.NewEngine(db.cat, cfg.machine, cfg.params)}
}

// Internal exposes the internal engine for the workload driver and
// benchmarks that need raw access.
func (e *Engine) Internal() *exec.Engine { return e.inner }

// Machine returns the engine's machine configuration.
func (e *Engine) Machine() Machine { return e.inner.Machine().Config() }

// Result is one query execution's outcome.
type Result struct {
	Values  []exec.Value
	Profile *exec.Profile
}

// Scalar returns result value i as a scalar.
func (r *Result) Scalar(i int) (int64, error) {
	if i >= len(r.Values) || r.Values[i].Kind != plan.KindScalar {
		return 0, fmt.Errorf("apq: result %d is not a scalar", i)
	}
	return r.Values[i].Scalar, nil
}

// Column returns result value i as an int64 slice (dictionary codes for
// string columns; use StringColumn for rendered strings).
func (r *Result) Column(i int) ([]int64, error) {
	if i >= len(r.Values) || r.Values[i].Kind != plan.KindColumn {
		return nil, fmt.Errorf("apq: result %d is not a column", i)
	}
	return r.Values[i].Col.Values(), nil
}

// StringColumn renders result value i as strings.
func (r *Result) StringColumn(i int) ([]string, error) {
	if i >= len(r.Values) || r.Values[i].Kind != plan.KindColumn {
		return nil, fmt.Errorf("apq: result %d is not a column", i)
	}
	col := r.Values[i].Col
	out := make([]string, col.Len())
	for j := range out {
		out[j] = col.Data().StringAt(j)
	}
	return out, nil
}

// MakespanNs returns the query's virtual response time in nanoseconds.
func (r *Result) MakespanNs() float64 { return r.Profile.Makespan() }

// Utilization returns the multi-core utilization (the paper's "parallelism
// usage", Figures 19/20).
func (r *Result) Utilization() float64 { return r.Profile.Utilization() }

// Tomograph renders the per-core execution timeline (Figures 19/20).
func (r *Result) Tomograph(width int) string { return r.Profile.Tomograph(width) }

// Execute runs q from the engine's current virtual time.
func (e *Engine) Execute(q *Query) (*Result, error) {
	vals, prof, err := e.inner.Execute(q.p)
	if err != nil {
		return nil, err
	}
	return &Result{Values: vals, Profile: prof}, nil
}

// ResultsEqual compares two results structurally (used to verify that
// differently parallelized plans agree).
func ResultsEqual(a, b *Result) bool {
	return exec.ResultsEqual(a.Values, b.Values)
}
