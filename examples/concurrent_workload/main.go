// Concurrent workload (the §4.2.3 / Figure 16 study): many clients replay a
// TPC-H mix. Heuristic plans over-partition and thrash under contention;
// adaptive plans use fewer cores per query and degrade more gracefully; the
// Vectorwise-style comparator's admission control serializes late clients.
//
// Run with: go run ./examples/concurrent_workload
package main

import (
	"fmt"
	"log"

	apq "repro"
)

const (
	clients = 16
	repeats = 3
)

func main() {
	db := apq.LoadTPCH(1, 13)
	queries := []int{6, 14, 4}

	// Converge adaptive plans once per query (queries are cached and
	// re-invoked in real deployments; adaptation has already happened).
	apMix := make([]*apq.Query, 0, len(queries))
	hpMix := make([]*apq.Query, 0, len(queries))
	vwMix := make([]*apq.Query, 0, len(queries))
	prep := apq.NewEngine(db, apq.TwoSocketMachine())
	for _, n := range queries {
		q := apq.TPCHQuery(n)
		sess := prep.NewAdaptiveSession(q,
			apq.WithConvergenceConfig(apq.DefaultConvergenceConfig(16)))
		if _, err := sess.Converge(); err != nil {
			log.Fatal(err)
		}
		apMix = append(apMix, sess.BestQuery())

		hp, err := prep.HeuristicPlan(q, 0)
		if err != nil {
			log.Fatal(err)
		}
		hpMix = append(hpMix, hp)

		vw, err := prep.VectorwisePlan(q)
		if err != nil {
			log.Fatal(err)
		}
		vwMix = append(vwMix, vw)
	}

	run := func(label string, mix []*apq.Query, vw bool) {
		eng := apq.NewEngine(db, apq.TwoSocketMachine())
		res, err := eng.RunConcurrent(clients, mix, apq.ConcurrentOptions{
			Repeats: repeats, Seed: 5, Vectorwise: vw,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s mean %8.2f ms   median %8.2f ms   p95 %8.2f ms   total %8.2f ms\n",
			label, res.Overall.Mean()/1e6, res.Overall.Median()/1e6,
			res.Overall.Percentile(95)/1e6, res.MakespanNs/1e6)
	}

	fmt.Printf("%d clients × %d queries each, mix = TPC-H %v\n\n", clients, repeats, queries)
	run("heuristic (32 parts)", hpMix, false)
	run("adaptive (converged)", apMix, false)
	run("vectorwise comparator", vwMix, true)

	fmt.Println("\nAdaptive plans' lower multi-core utilization leaves spare resources")
	fmt.Println("that improve response times under concurrency (paper §4.2.5).")
}
