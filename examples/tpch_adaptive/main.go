// TPC-H Q14, adaptive vs heuristic (the Table 5 / Figures 19-20 study):
// both parallelizations produce identical results, but the adaptive plan
// uses far fewer operators and much less of the machine, leaving headroom
// for concurrent work.
//
// Run with: go run ./examples/tpch_adaptive
package main

import (
	"fmt"
	"log"

	apq "repro"
)

func main() {
	db := apq.LoadTPCH(2, 7)
	eng := apq.NewEngine(db, apq.TwoSocketMachine())
	q := apq.TPCHQuery(14)

	serial, err := eng.Execute(q)
	if err != nil {
		log.Fatal(err)
	}

	// Heuristic parallelization: 32 partitions (the machine's threads),
	// every parallelizable operator cloned.
	hp, err := eng.HeuristicPlan(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	hpRes, err := eng.Execute(hp)
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive parallelization: converge on execution feedback.
	sess := eng.NewAdaptiveSession(q, apq.WithResultVerification())
	rep, err := sess.Converge()
	if err != nil {
		log.Fatal(err)
	}
	ap := sess.BestQuery()
	apRes, err := eng.Execute(ap)
	if err != nil {
		log.Fatal(err)
	}

	if !apq.ResultsEqual(serial, hpRes) || !apq.ResultsEqual(serial, apRes) {
		log.Fatal("parallel plans diverged from the serial plan")
	}

	fmt.Println("TPC-H Q14 plan statistics (compare paper Table 5):")
	fmt.Printf("%-28s %10s %10s\n", "", "adaptive", "heuristic")
	aps, hps := ap.Stats(), hp.Stats()
	fmt.Printf("%-28s %10d %10d\n", "# select operators", aps.Selects, hps.Selects)
	fmt.Printf("%-28s %10d %10d\n", "# join operators", aps.Joins, hps.Joins)
	fmt.Printf("%-28s %10d %10d\n", "# instructions", aps.Instrs, hps.Instrs)
	fmt.Printf("%-28s %10d %10d\n", "max degree of parallelism", aps.MaxDOP, hps.MaxDOP)
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "multi-core utilization",
		apRes.Utilization()*100, hpRes.Utilization()*100)
	fmt.Printf("%-28s %8.2fms %8.2fms   (serial %.2f ms)\n", "response time",
		apRes.MakespanNs()/1e6, hpRes.MakespanNs()/1e6, serial.MakespanNs()/1e6)
	fmt.Printf("\nadaptive converged in %d runs; global minimum at run %d\n",
		rep.TotalRuns, rep.GMERun)

	fmt.Println("\nadaptive tomograph (Figure 19 analogue):")
	fmt.Print(apRes.Tomograph(88))
	fmt.Println("\nheuristic tomograph (Figure 20 analogue):")
	fmt.Print(hpRes.Tomograph(88))
}
