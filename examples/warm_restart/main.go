// Example warm_restart demonstrates the persistent convergence store: a
// query service converges a query (each request one adaptive run), persists
// the converged session to a single-file store, shuts down, and a second
// service started on the same store file serves the query converged from its
// very FIRST request — the learned plan survives the restart instead of
// being re-discovered. The export/import path is shown too: the first
// store's records round-trip through a self-describing export file into a
// fresh store, which a third service rehydrates identically.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	apq "repro"
)

type queryResponse struct {
	Session   string  `json:"session"`
	State     string  `json:"state"`
	Run       int     `json:"run"`
	CacheHit  bool    `json:"cache_hit"`
	LatencyNs float64 `json:"latency_ns"`
	Speedup   float64 `json:"speedup"`
	DOP       int     `json:"dop"`
}

type storeStats struct {
	Records            int   `json:"records"`
	FileBytes          int64 `json:"file_bytes"`
	RehydratedSessions int   `json:"rehydrated_sessions"`
	RecordsWritten     int   `json:"records_written"`
}

func serve(srv *apq.Server, body string) queryResponse {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/query", bytes.NewReader([]byte(body)))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		log.Fatalf("POST /query: status %d: %s", rec.Code, rec.Body.String())
	}
	var qr queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		log.Fatal(err)
	}
	return qr
}

func stats(srv *apq.Server) storeStats {
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var resp struct {
		Store storeStats `json:"store"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		log.Fatal(err)
	}
	return resp.Store
}

func main() {
	dir, err := os.MkdirTemp("", "apq-warm-restart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	storePath := filepath.Join(dir, "plans.apqs")

	db := apq.LoadTPCH(0.5, 42)
	cfg := apq.ServerConfig{
		DB:         db,
		Machine:    apq.TwoSocketMachine(),
		DBIdentity: apq.DBIdentity("tpch", 0.5, 42),
		Benchmark:  "tpch",
		Shards:     1,
		StorePath:  storePath,
	}
	body := `{"query":6}`

	// Service one: converge from scratch. The first request runs the serial
	// plan; hundreds of adaptive runs later the global-minimum plan is
	// found, and the converged session is persisted write-behind.
	srv1, err := apq.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	first := serve(srv1, body)
	qr := first
	runs := 1
	for ; qr.State != "converged" && runs < 1000; runs++ {
		qr = serve(srv1, body)
	}
	if qr.State != "converged" {
		log.Fatal("q6 never converged")
	}
	fmt.Printf("service 1: converged q6 in %d requests (first %.3f ms, converged %.3f ms, %.2fx, dop %d)\n",
		runs, first.LatencyNs/1e6, qr.LatencyNs/1e6, qr.Speedup, qr.DOP)
	srv1.Close() // drains requests, flushes the write-behind queue, closes the store
	fmt.Printf("service 1: closed; store persisted at %s\n\n", filepath.Base(storePath))

	// Service two: same store file. The converged session is rehydrated at
	// startup — identity-checked against the dataset — so request ONE is a
	// cache hit on the converged plan.
	srv2, err := apq.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	warm := serve(srv2, body)
	st := stats(srv2)
	fmt.Printf("service 2: rehydrated %d session(s) from %d record(s) (%d bytes on disk)\n",
		st.RehydratedSessions, st.Records, st.FileBytes)
	fmt.Printf("service 2: FIRST request: state=%s cache_hit=%v run=%d, %.3f ms (vs %.3f ms cold first) — %.1fx\n\n",
		warm.State, warm.CacheHit, warm.Run, warm.LatencyNs/1e6, first.LatencyNs/1e6, first.LatencyNs/warm.LatencyNs)
	if warm.State != "converged" || !warm.CacheHit {
		log.Fatalf("warm restart failed: first request %+v", warm)
	}
	srv2.Close()

	// Export service one's plans and import them into a brand-new store: the
	// same converged serving moves to a daemon that never learned anything.
	exportPath := filepath.Join(dir, "plans.apqx")
	freshPath := filepath.Join(dir, "fresh.apqs")
	n, err := apq.ExportPlans(storePath, exportPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d record(s) to %s, importing into %s\n", n, filepath.Base(exportPath), filepath.Base(freshPath))
	if _, err := apq.ImportPlans(freshPath, exportPath); err != nil {
		log.Fatal(err)
	}
	cfg.StorePath = freshPath
	srv3, err := apq.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv3.Close()
	imported := serve(srv3, body)
	fmt.Printf("service 3 (import of exported plans): FIRST request: state=%s cache_hit=%v, %.3f ms\n",
		imported.State, imported.CacheHit, imported.LatencyNs/1e6)
	if imported.State != "converged" {
		log.Fatal("imported plans did not serve converged")
	}
}
