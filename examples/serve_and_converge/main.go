// Example serve_and_converge starts the apqd query service on a loopback
// port and plays a client re-submitting the same TPC-H query: because the
// daemon keeps the query's adaptive session alive in its plan cache, every
// request is one adaptive run and the reported latency drops
// request-over-request until the session converges on the global-minimum
// plan — the paper's "optimize once and execute many, adaptively" workflow
// observed through the serving layer.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	apq "repro"
)

type queryResponse struct {
	Session       string  `json:"session"`
	State         string  `json:"state"`
	Run           int     `json:"run"`
	LatencyNs     float64 `json:"latency_ns"`
	BestLatencyNs float64 `json:"best_latency_ns"`
	Speedup       float64 `json:"speedup"`
	DOP           int     `json:"dop"`
}

func main() {
	srv, err := apq.NewServer(apq.ServerConfig{
		DB:         apq.LoadTPCH(1, 42),
		Machine:    apq.TwoSocketMachine(),
		DBIdentity: apq.DBIdentity("tpch", 1, 42),
		Benchmark:  "tpch",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("apqd serving on %s\n\n", base)

	body := []byte(`{"query":14}`)
	var first, last queryResponse
	for i := 0; i < 400; i++ {
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if i == 0 {
			first = qr
		}
		last = qr
		// Print a sparkline-style trace of the first runs and every tenth.
		if i < 12 || i%10 == 0 || qr.State == "converged" {
			bar := strings.Repeat("#", int(40*qr.LatencyNs/first.LatencyNs))
			fmt.Printf("req %3d  run %3d  %8.3f ms  dop %2d  %s\n",
				i, qr.Run, qr.LatencyNs/1e6, qr.DOP, bar)
		}
		if qr.State == "converged" {
			break
		}
	}

	fmt.Printf("\nsession %s converged: %.3f ms -> %.3f ms (%.2fx) at DOP %d\n",
		last.Session, first.LatencyNs/1e6, last.BestLatencyNs/1e6, last.Speedup, last.DOP)

	// The full convergence trace is a GET away.
	resp, err := http.Get(base + "/sessions/" + last.Session + "/trace")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var trace struct {
		Runs     int   `json:"runs"`
		GMERun   int   `json:"gme_run"`
		BestDOP  int   `json:"best_dop"`
		Outliers []int `json:"outliers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d runs, global minimum at run %d, best DOP %d\n",
		trace.Runs, trace.GMERun, trace.BestDOP)
}
