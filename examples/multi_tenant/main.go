// Example multi_tenant starts one apqd query service hosting three tenant
// datasets — the default TPC-H database plus two more generated with
// different seeds — over a single engine shard pool, then converges the same
// query shape on every tenant concurrently. One warehouse engine multiplexed
// across independently-named datasets behind a thin service layer (the
// IB-DWB shape): the tenants share the simulated machines, buffer recyclers
// and plan-schedule caches, and stay isolated because every plan-cache
// fingerprint incorporates its tenant's dataset identity. The per-tenant
// /stats breakdown and the distinct converged sessions are printed at the
// end.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	apq "repro"
)

type queryResponse struct {
	Session   string  `json:"session"`
	Tenant    string  `json:"tenant"`
	State     string  `json:"state"`
	Run       int     `json:"run"`
	LatencyNs float64 `json:"latency_ns"`
	Speedup   float64 `json:"speedup"`
	DOP       int     `json:"dop"`
}

func main() {
	srv, err := apq.NewServer(apq.ServerConfig{
		DB:         apq.LoadTPCH(0.5, 42),
		Machine:    apq.TwoSocketMachine(),
		DBIdentity: apq.DBIdentity("tpch", 0.5, 42),
		Benchmark:  "tpch",
		Shards:     2,
		Tenants: []apq.TenantConfig{
			{Name: "acme", Benchmark: "tpch", SF: 0.5, Seed: 7, MaxSessions: 8, MaxInFlight: 16},
			{Name: "globex", Benchmark: "tpch", SF: 0.5, Seed: 9, MaxSessions: 8, MaxInFlight: 16},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("apqd serving 3 tenants over a %d-shard pool on %s\n\n", srv.Shards(), base)

	// The same query shape on every tenant: distinct datasets mean distinct
	// fingerprints, so each tenant converges its own adaptive session.
	tenants := []string{"default", "acme", "globex"}
	final := make([]queryResponse, len(tenants))
	var wg sync.WaitGroup
	for i, tenant := range tenants {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			body := []byte(fmt.Sprintf(
				`{"tenant":%q,"select_sum":{"table":"lineitem","column":"l_quantity","lo":1,"hi":12}}`, tenant))
			for r := 0; r < 600; r++ {
				resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Fatal(err)
				}
				var qr queryResponse
				if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
				final[i] = qr
				if qr.State == "converged" {
					return
				}
			}
			log.Fatalf("tenant %s never converged", tenant)
		}(i, tenant)
	}
	wg.Wait()

	for i, tenant := range tenants {
		qr := final[i]
		fmt.Printf("tenant %-8s session %-6s converged at run %3d: %8.3f ms, %.2fx speedup, dop %d\n",
			tenant, qr.Session, qr.Run, qr.LatencyNs/1e6, qr.Speedup, qr.DOP)
	}

	// The sessions are distinct per tenant even though the query is the
	// same shape — the fingerprint incorporates each dataset's identity.
	seen := map[string]bool{}
	for _, qr := range final {
		if seen[qr.Session] {
			log.Fatalf("two tenants shared session %s", qr.Session)
		}
		seen[qr.Session] = true
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Shards  int `json:"shards"`
		Tenants []struct {
			Tenant     string `json:"tenant"`
			DBIdentity string `json:"db_identity"`
			Requests   int64  `json:"requests"`
			Cache      struct {
				Entries   int   `json:"entries"`
				Hits      int64 `json:"hits"`
				Converged int   `json:"converged"`
			} `json:"cache"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/stats tenant breakdown (%d shards shared):\n", stats.Shards)
	for _, t := range stats.Tenants {
		fmt.Printf("  %-8s %-20s %4d requests, %d sessions (%d converged), %d cache hits\n",
			t.Tenant, t.DBIdentity, t.Requests, t.Cache.Entries, t.Cache.Converged, t.Cache.Hits)
	}
}
