// Quickstart: load a TPC-H database, run a query serially, then let
// adaptive parallelization converge on a near-optimal parallel plan and
// compare.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	apq "repro"
)

func main() {
	// A TPC-H database at scale factor 2 (≈120k lineitem rows at the
	// library's 1/100 scale) on the paper's 2-socket 32-thread machine.
	db := apq.LoadTPCH(2, 42)
	eng := apq.NewEngine(db, apq.TwoSocketMachine())

	// TPC-H Q6: the paper's "simple" query — a predicate-only lineitem
	// scan with a scalar aggregate.
	q := apq.TPCHQuery(6)
	serial, err := eng.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	sum, _ := serial.Scalar(0)
	fmt.Printf("Q6 serial:    revenue = %d, time = %.3f ms, utilization = %.1f%%\n",
		sum, serial.MakespanNs()/1e6, serial.Utilization()*100)

	// Adaptive parallelization: re-invoke the query; each run parallelizes
	// the most expensive operator until the convergence algorithm halts.
	sess := eng.NewAdaptiveSession(q, apq.WithResultVerification())
	report, err := sess.Converge()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q6 adaptive:  GME = %.3f ms at run %d of %d, speedup = %.2fx\n",
		report.GMENs/1e6, report.GMERun, report.TotalRuns, report.Speedup())

	best := sess.BestQuery()
	fmt.Printf("best plan:    DOP = %d, %d instructions (%d selects, %d packs)\n",
		best.MaxDOP(), best.Stats().Instrs, best.Stats().Selects, best.Stats().Packs)

	// The converged plan produces identical results.
	again, err := eng.Execute(best)
	if err != nil {
		log.Fatal(err)
	}
	if !apq.ResultsEqual(serial, again) {
		log.Fatal("adaptive plan diverged from serial results")
	}
	fmt.Println("results:      adaptive plan matches the serial plan")

	// A condensed convergence trace (execution time per run).
	fmt.Println("\nconvergence trace (ms per run):")
	for i, t := range report.History {
		marker := ""
		if i == report.GMERun {
			marker = "  <- global minimum"
		}
		if i%5 == 0 || marker != "" {
			fmt.Printf("  run %3d: %8.3f%s\n", i, t/1e6, marker)
		}
	}

	// Per-core execution timeline of the converged plan (Figures 19/20).
	fmt.Println("\ntomograph of the converged plan:")
	fmt.Print(again.Tomograph(88))
}
