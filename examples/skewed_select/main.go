// Skewed select (the Figure 12 scenario): a column whose second half holds
// sequential clusters of identical values makes static equi-range partitions
// suffer execution skew — some partitions produce far more output than
// others. Adaptive parallelization keeps splitting whichever partition stays
// expensive; a work-stealing-style configuration fights the skew with many
// small partitions instead.
//
// Run with: go run ./examples/skewed_select
package main

import (
	"fmt"
	"log"
	"math/rand"

	apq "repro"
)

const rows = 2_000_000

// buildSkewedDB lays out the Figure 13 distribution: random tuples in the
// first half, clusters of identical (predicate-matching) tuples covering
// skewPct percent of the column in the second half.
func buildSkewedDB(skewPct int) *apq.DB {
	rng := rand.New(rand.NewSource(99))
	vals := make([]int64, rows)
	clusterRows := rows * skewPct / 100
	for i := range vals {
		if i >= rows/2 && i < rows/2+clusterRows {
			vals[i] = 7 // matched by the predicate below
		} else {
			vals[i] = int64(rng.Intn(1_000_000)) + 1_000_000
		}
	}
	db := apq.NewDB()
	if err := db.AddTable("skewed").Int64("v", vals).Done(); err != nil {
		log.Fatal(err)
	}
	return db
}

func main() {
	// 8 worker threads, as in the paper's experiment.
	machine := apq.TwoSocketMachine()
	machine.PhysCoresPerSocket = 4
	machine.SMT = 1

	fmt.Println("skew%   static 8 parts   static 128 parts (steal)   adaptive dynamic parts")
	for _, skew := range []int{10, 20, 30, 40, 50} {
		db := buildSkewedDB(skew)
		q := apq.SelectSumQuery("skewed", "v", apq.AtMost(100))

		// Static 8 partitions on 8 threads.
		eng1 := apq.NewEngine(db, machine)
		st8, err := eng1.HeuristicPlan(q, 8)
		if err != nil {
			log.Fatal(err)
		}
		r8, err := eng1.Execute(st8)
		if err != nil {
			log.Fatal(err)
		}

		// Static 128 partitions on 8 threads (work-stealing style).
		eng2 := apq.NewEngine(db, machine)
		ws, err := eng2.WorkStealingPlan(q, 128)
		if err != nil {
			log.Fatal(err)
		}
		rws, err := eng2.Execute(ws)
		if err != nil {
			log.Fatal(err)
		}

		// Adaptive: dynamically sized partitions.
		eng3 := apq.NewEngine(db, machine)
		sess := eng3.NewAdaptiveSession(q,
			apq.WithConvergenceConfig(apq.DefaultConvergenceConfig(8)))
		rep, err := sess.Converge()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%4d   %10.2f ms   %17.2f ms   %15.2f ms (DOP %d)\n",
			skew, r8.MakespanNs()/1e6, rws.MakespanNs()/1e6,
			rep.GMENs/1e6, sess.BestQuery().MaxDOP())

		if !apq.ResultsEqual(r8, rws) {
			log.Fatal("static and work-stealing plans disagree")
		}
	}
	fmt.Println("\nDynamically sized partitions absorb the execution skew that static")
	fmt.Println("equi-range partitions suffer from, and stay competitive with the")
	fmt.Println("many-small-partitions work-stealing configuration (paper §4.1.1).")
}
