// Convergence lab (the Figure 11 study): watch the convergence algorithm
// navigate minima, plateaus, up-hills and noise peaks while adapting a join
// plan in a noisy environment.
//
// Run with: go run ./examples/convergence_lab
package main

import (
	"fmt"
	"log"
	"strings"

	apq "repro"
)

func main() {
	// A join micro-benchmark: large outer key column against a small inner
	// whose hash table fits the (scaled) shared L3 cache.
	db := apq.NewDB()
	const outerRows = 2_500_000
	const innerRows = 20_000
	outer := make([]int64, outerRows)
	inner := make([]int64, innerRows)
	payload := make([]int64, innerRows)
	for i := range outer {
		outer[i] = int64(i*2654435761) % innerRows
		if outer[i] < 0 {
			outer[i] += innerRows
		}
	}
	for i := range inner {
		inner[i] = int64(i)
		payload[i] = int64(i) * 3
	}
	if err := db.AddTable("big").Int64("k", outer).Done(); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTable("small").Int64("k", inner).Int64("v", payload).Done(); err != nil {
		log.Fatal(err)
	}

	// Enable the OS-noise model so the trace shows interference peaks
	// (§3.3.3) that the algorithm must forgive.
	eng := apq.NewEngine(db, apq.TwoSocketMachine(),
		apq.WithNoise(apq.DefaultNoise()), apq.WithSeed(2024))

	q := apq.JoinSumQuery("big", "k", "small", "k", "v")
	sess := eng.NewAdaptiveSession(q,
		apq.WithConvergenceConfig(apq.DefaultConvergenceConfig(16)))
	rep, err := sess.Converge()
	if err != nil {
		log.Fatal(err)
	}

	// ASCII rendition of Figure 11: execution time per run.
	max := 0.0
	for _, t := range rep.History {
		if t > max {
			max = t
		}
	}
	outliers := map[int]bool{}
	for _, r := range rep.Outliers {
		outliers[r] = true
	}
	fmt.Println("adaptive join convergence (execution time per run):")
	for i, t := range rep.History {
		bar := int(t / max * 64)
		marks := ""
		if i == rep.GMERun {
			marks = " <- global minimum"
		}
		if outliers[i] {
			marks += " (noise peak, forgiven)"
		}
		fmt.Printf("run %3d %9.2f ms |%s%s\n", i, t/1e6, strings.Repeat("#", bar), marks)
	}
	fmt.Printf("\nconverged after %d runs; GME %.2f ms at run %d; speedup %.2fx; DOP %d\n",
		rep.TotalRuns, rep.GMENs/1e6, rep.GMERun, rep.Speedup(), sess.BestQuery().MaxDOP())
	fmt.Printf("noise peaks forgiven: %v\n", rep.Outliers)
}
